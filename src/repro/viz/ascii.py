"""ASCII rendering of histograms and bar series.

The experiment harness prints figure data directly in the terminal —
useful offline and in CI logs, where the paper's matplotlib figures are
unavailable.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.histograms import Histogram

__all__ = ["render_histogram", "render_side_by_side", "bar_chart"]

_BLOCK = "█"


def bar_chart(
    labels: list[str],
    values: list[float],
    *,
    width: int = 50,
    title: str | None = None,
) -> str:
    """Horizontal bar chart with proportional block bars."""
    out = [title] if title else []
    top = max(values) if values and max(values) > 0 else 1.0
    label_w = max((len(l) for l in labels), default=0)
    for label, value in zip(labels, values):
        bar = _BLOCK * max(0, round(width * value / top))
        out.append(f"{label.rjust(label_w)} | {bar} {value:g}")
    return "\n".join(out)


def render_histogram(
    hist: Histogram, *, width: int = 50, max_rows: int = 25
) -> str:
    """Render one workload histogram, one bin per row.

    Consecutive bins are merged down to ``max_rows`` rows so wide
    histograms stay readable.
    """
    edges = hist.edges
    counts = hist.counts
    if counts.size > max_rows:
        group = int(np.ceil(counts.size / max_rows))
        merged_counts = [
            int(counts[i : i + group].sum())
            for i in range(0, counts.size, group)
        ]
        merged_edges = [edges[i] for i in range(0, counts.size, group)]
        merged_edges.append(edges[-1])
        counts = np.asarray(merged_counts)
        edges = np.asarray(merged_edges)
    labels = [
        f"[{edges[i]:.0f},{edges[i + 1]:.0f})" for i in range(counts.size)
    ]
    title = f"{hist.label or 'loads'} @ tick {hist.tick} (n={hist.n_nodes})"
    return bar_chart(labels, [int(c) for c in counts], width=width, title=title)


def render_side_by_side(
    left: Histogram, right: Histogram, *, width: int = 30
) -> str:
    """Two histograms over shared bins, printed in facing columns —
    the layout of the paper's comparison figures."""
    if left.edges.shape != right.edges.shape or not np.allclose(
        left.edges, right.edges
    ):
        raise ValueError("histograms must share bin edges")
    edges = left.edges
    top = max(int(left.counts.max()), int(right.counts.max()), 1)
    header = (
        f"{(left.label or 'left').center(width)} | bin | "
        f"{(right.label or 'right').center(width)}"
    )
    lines = [header, "-" * len(header)]
    for i in range(left.counts.size):
        lc = int(left.counts[i])
        rc = int(right.counts[i])
        lbar = (_BLOCK * round(width * lc / top)).rjust(width)
        rbar = _BLOCK * round(width * rc / top)
        label = f"{edges[i]:6.0f}"
        lines.append(f"{lbar} |{label} | {rbar}")
    return "\n".join(lines)
