"""Offline rendering: ASCII histograms, SVG ring plots, CSV/JSON export."""

from repro.viz.ascii import bar_chart, render_histogram, render_side_by_side
from repro.viz.export import result_to_json, write_csv, write_json
from repro.viz.ringplot import render_ring_svg, ring_svg
from repro.viz.timeline import sparkline, utilization_timeline

__all__ = [
    "render_histogram",
    "render_side_by_side",
    "bar_chart",
    "ring_svg",
    "render_ring_svg",
    "write_csv",
    "write_json",
    "result_to_json",
    "sparkline",
    "utilization_timeline",
]
