"""Unicode sparklines for per-tick series.

Condenses a whole run's utilization (or any series) into one terminal
line — the examples use it to show *when* each strategy loses steam.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sparkline", "utilization_timeline"]

_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(
    values: np.ndarray, *, width: int = 60, lo: float | None = None,
    hi: float | None = None,
) -> str:
    """Render a series as a fixed-width unicode sparkline.

    The series is mean-pooled into ``width`` buckets; ``lo``/``hi`` pin
    the scale (defaults to the data range) so multiple sparklines can
    share an axis.
    """
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        return ""
    if x.size > width:
        # mean-pool into `width` buckets
        edges = np.linspace(0, x.size, width + 1).astype(int)
        x = np.array(
            [x[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a]
        )
    lo = float(x.min()) if lo is None else lo
    hi = float(x.max()) if hi is None else hi
    if hi <= lo:
        return _LEVELS[0] * x.size
    scaled = np.clip((x - lo) / (hi - lo), 0.0, 1.0)
    idx = np.minimum(
        (scaled * len(_LEVELS)).astype(int), len(_LEVELS) - 1
    )
    return "".join(_LEVELS[i] for i in idx)


def utilization_timeline(series, *, width: int = 60) -> str:
    """Sparkline of a TickSeries' utilization, pinned to [0, 1]."""
    return sparkline(series.utilization(), width=width, lo=0.0, hi=1.0)
