"""SVG rendering of ring layouts (paper Figures 2 and 3).

Pure-stdlib SVG writer: red circles for nodes, blue pluses for tasks on
the unit circle, exactly the paper's visual convention.  No matplotlib
required, so the figures regenerate in any offline environment.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["render_ring_svg", "ring_svg"]


def _transform(xy: np.ndarray, size: int, margin: int) -> np.ndarray:
    """Map unit-circle coordinates to SVG pixel space (y axis flipped)."""
    radius = (size - 2 * margin) / 2
    cx = cy = size / 2
    out = np.empty_like(xy)
    out[:, 0] = cx + xy[:, 0] * radius
    out[:, 1] = cy - xy[:, 1] * radius
    return out


def ring_svg(
    node_xy: np.ndarray,
    task_xy: np.ndarray,
    *,
    size: int = 480,
    margin: int = 30,
    title: str = "",
) -> str:
    """Build the SVG document for one ring figure.

    Parameters
    ----------
    node_xy / task_xy:
        (n, 2) arrays of unit-circle coordinates (from
        :func:`repro.hashspace.projection.project_many`).
    """
    nodes = _transform(np.asarray(node_xy, dtype=float), size, margin)
    tasks = _transform(np.asarray(task_xy, dtype=float), size, margin)
    radius = (size - 2 * margin) / 2
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" '
        f'height="{size}" viewBox="0 0 {size} {size}">',
        f'<rect width="{size}" height="{size}" fill="white"/>',
        f'<circle cx="{size / 2}" cy="{size / 2}" r="{radius}" '
        'fill="none" stroke="#bbbbbb" stroke-width="1"/>',
    ]
    if title:
        parts.append(
            f'<text x="{size / 2}" y="{margin / 2 + 6}" font-size="14" '
            f'text-anchor="middle" fill="#333333">{title}</text>'
        )
    plus = 5
    for x, y in tasks:
        parts.append(
            f'<path d="M {x - plus} {y} H {x + plus} M {x} {y - plus} '
            f'V {y + plus}" stroke="#1f4fd8" stroke-width="1.6" '
            'fill="none"/>'
        )
    for x, y in nodes:
        parts.append(
            f'<circle cx="{x}" cy="{y}" r="7" fill="#d62828" '
            'stroke="#7a0f0f" stroke-width="1.5"/>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def render_ring_svg(
    node_xy: np.ndarray,
    task_xy: np.ndarray,
    path: str | Path,
    *,
    size: int = 480,
    title: str = "",
) -> Path:
    """Write the ring figure to ``path``; returns the written path."""
    path = Path(path)
    path.write_text(ring_svg(node_xy, task_xy, size=size, title=title))
    return path
