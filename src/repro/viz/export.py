"""CSV/JSON export of experiment results."""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.experiments.spec import ExperimentResult
from repro.obs.serialize import jsonable as _jsonable

__all__ = ["write_csv", "write_json", "result_to_json"]


def write_csv(result: ExperimentResult, path: str | Path) -> Path:
    """Write an experiment's rows as CSV (headers included)."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(result.headers)
        writer.writerows(result.rows)
    return path


def result_to_json(result: ExperimentResult) -> dict:
    """JSON-safe dict of the tabular payload (raw artifacts summarized)."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "scale": result.scale,
        "headers": list(result.headers),
        "rows": _jsonable(result.rows),
        "paper_expected": _jsonable(result.paper_expected),
        "notes": result.notes,
    }


def write_json(result: ExperimentResult, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(result_to_json(result), indent=2))
    return path
