"""The distributed trial fabric: a resumable work-queue broker.

``repro.fabric`` turns the multi-trial runner into a small distributed
system with exact-reproducibility guarantees: a :class:`~.broker.Broker`
flattens a sweep grid into a deterministic :class:`~.queue.TrialQueue`,
drains it with a local process pool, optionally accepts remote
``repro fabric worker`` processes over :mod:`repro.net.transport`, and
streams every settled result into the content-addressed trial cache —
which is also the resume story.  See ``docs/fabric.md``.

:func:`repro.sim.trials.run_trials` and :func:`~repro.sim.trials.sweep`
delegate here, so every experiment uses the fabric without knowing it.
"""

from repro.fabric.broker import STATUS_FORMAT, Broker
from repro.fabric.queue import GridPoint, TrialQueue, WorkUnit, execute_unit
from repro.fabric.worker import WorkerSummary, run_worker

__all__ = [
    "Broker",
    "GridPoint",
    "STATUS_FORMAT",
    "TrialQueue",
    "WorkUnit",
    "WorkerSummary",
    "execute_unit",
    "run_worker",
]
