"""The trial-fabric broker: one work queue, many workers, exact results.

The broker owns a :class:`~repro.fabric.queue.TrialQueue` (a flattened
sweep grid) and drains it from two directions at once:

* a **local pool** of spawn-context ``ProcessPoolExecutor`` workers
  (``n_jobs`` slots; ``n_jobs=1`` runs trials in-process, so unpicklable
  ``trial_fn``\\ s keep working), and
* a **socket attach path**: ``open_listener()`` binds a TCP port
  speaking :mod:`repro.net.transport` frames, and any number of
  ``repro fabric worker`` processes — on this host or others — lease
  units, run them, and settle results mid-sweep.

Determinism is structural, not cooperative: every unit's seed is fixed
at queue-build time (``SeedSequence(entropy, spawn_key)``) and results
are assembled by unit index, so the output is bit-identical whether the
grid ran serially, on eight local processes, or half-remote.  Settled
results stream into the :class:`~repro.sim.cache.TrialCache` as they
arrive, which is the whole resume story: SIGKILL the broker anywhere and
a re-run recomputes only the missing units.

Failure handling (all under one lock, all through ``_settle_locked``):

* an erroring trial is requeued until its attempt budget (``retries + 1``)
  is spent, then marked failed;
* a remote worker that dies mid-trial simply stops renewing its lease —
  after ``lease_timeout`` the unit is settled as an error (and usually
  requeued), so one dead worker loses at most its in-flight unit;
* duplicate settles (a "dead" worker's result racing its own lease
  expiry) are dropped or harmlessly accepted — trials are pure functions
  of ``(config, seed path)``, so any settle for a unit is *the* answer;
* a zero-completion window of ``timeout`` seconds on the local pool
  means the in-flight workers are hung: they are killed and their units
  retried.  Two races the old per-batch dispatcher had are fixed here:
  an empty ``wait()`` is re-checked against ``Future.done()`` before
  declaring a timeout, and a future that completes between that check
  and its ``cancel()`` has its (real) result consumed instead of being
  discarded and re-run.

Wall-clock time in this module is scheduling metadata — lease deadlines,
ETA estimates, status-file rate limiting.  It never touches simulation
state, which is why the module sits on the reprolint wall-clock
allowlist.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import socket
import tempfile
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.errors import ConfigError, ProtocolError, TrialError
from repro.fabric.protocol import (
    OP_LEASE,
    OP_SETTLE,
    OP_STATUS,
    result_from_wire,
    unit_to_wire,
)
from repro.fabric.queue import (
    CACHED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    SETTLED_STATES,
    GridPoint,
    TrialQueue,
    execute_unit,
)
from repro.net.transport import (
    Address,
    format_address,
    read_frame_sync,
    write_frame_sync,
)
from repro.obs.metrics import MetricsRegistry
from repro.sim.cache import TrialCache, get_cache
from repro.sim.results import SimulationResult, TrialSet

__all__ = ["STATUS_FORMAT", "Broker"]

STATUS_FORMAT = "repro.fabric_status.v1"

#: Local dispatch sources (everything else is a remote worker name).
_LOCAL_SOURCES = ("local", "pool")

#: How long after its last lease/settle a remote worker still counts as
#: "active" in status snapshots and ETA parallelism estimates.
_WORKER_ACTIVE_WINDOW = 10.0


class Broker:
    """Run a trial grid to completion across local and remote workers.

    Parameters mirror :func:`repro.sim.trials.run_trials` where they
    overlap (``n_jobs``, ``cache``, ``retries``, ``timeout``,
    ``trial_fn``, ``progress``); the fabric-only knobs are:

    listen:
        ``(host, port)`` to accept remote workers on (port 0 = ephemeral;
        :meth:`open_listener` returns the bound address).  ``None``
        (default) runs purely local.
    lease_timeout:
        Seconds a remote worker may hold a unit without settling it
        before the broker declares the worker dead and requeues the unit.
    poll_interval:
        Dispatch-loop tick; bounds how quickly lease expiry and status
        updates are noticed.
    status_path:
        If set, a JSON status document (format
        :data:`STATUS_FORMAT`) is atomically rewritten about twice a
        second — ``repro fabric status`` reads it without touching the
        broker.
    metrics:
        A :class:`MetricsRegistry` to stream ``fabric.*`` counters and
        gauges into (one is created if omitted).
    """

    def __init__(
        self,
        grid: Sequence[GridPoint],
        *,
        n_jobs: int = 1,
        cache: TrialCache | bool | None = None,
        retries: int = 1,
        timeout: float | None = None,
        trial_fn: Callable | None = None,
        progress: Callable[[dict], None] | None = None,
        metrics: MetricsRegistry | None = None,
        listen: Address | None = None,
        lease_timeout: float = 120.0,
        poll_interval: float = 0.05,
        status_path: Path | str | None = None,
    ):
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        if lease_timeout <= 0:
            raise ConfigError(
                f"lease_timeout must be > 0, got {lease_timeout}"
            )
        if n_jobs == 0:
            from repro.sim.trials import default_n_jobs

            n_jobs = default_n_jobs()
        if n_jobs < 1:
            raise ConfigError(f"n_jobs must be >= 0, got {n_jobs}")

        grid = list(grid)
        if cache is None or cache is True:
            seeded = any(p.config.seed is not None for p in grid)
            cache_obj = get_cache() if (cache or seeded) else None
        elif cache is False:
            cache_obj = None
        else:
            cache_obj = cache

        self._cache = cache_obj
        self._queue = TrialQueue(grid, keyed=cache_obj is not None)
        self._n_jobs = n_jobs
        self._retries = retries
        self._timeout = timeout
        self._trial_fn = trial_fn
        self._progress = progress
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._listen = listen
        self._lease_timeout = lease_timeout
        self._poll = poll_interval
        self._status_path = Path(status_path) if status_path else None

        self._lock = threading.Lock()
        self._shutdown = threading.Event()
        self._lsock: socket.socket | None = None
        self._listener: threading.Thread | None = None
        self._bound: Address | None = None
        self._workers_seen: dict[str, float] = {}
        self._started: float | None = None
        self._last_status_write = 0.0
        self._run_seconds = 0.0
        self._runs_settled = 0

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    @property
    def queue(self) -> TrialQueue:
        return self._queue

    def open_listener(self) -> Address:
        """Bind the attach socket and start serving workers; idempotent."""
        if self._listen is None:
            raise ConfigError("broker was constructed without listen=")
        if self._bound is not None:
            return self._bound
        sock = socket.create_server(self._listen)
        sock.settimeout(self._poll * 4)
        self._lsock = sock
        self._bound = sock.getsockname()[:2]
        self._listener = threading.Thread(
            target=self._serve, name="fabric-broker-listener", daemon=True
        )
        self._listener.start()
        return self._bound

    def status(self) -> dict[str, Any]:
        """Live status snapshot (the ``repro fabric status`` document)."""
        with self._lock:
            return self._snapshot_locked()

    def run(self) -> list[TrialSet]:
        """Drain the queue; return one :class:`TrialSet` per grid point.

        Raises :class:`~repro.errors.TrialError` when any unit is still
        failed after its retry budget — with every completed sibling
        already settled into the cache, exactly like the old per-point
        runner.
        """
        self._started = time.perf_counter()
        self._probe_cache()
        if self._listen is not None and self._bound is None:
            self.open_listener()
        try:
            with self._lock:
                live = sum(
                    1
                    for st in self._queue.state
                    if st.status not in SETTLED_STATES
                )
            if self._n_jobs > 1 and live > 1:
                self._run_pool()
            else:
                self._run_serial()
        finally:
            self._shutdown.set()
            self._close_listener()
            with self._lock:
                self._snapshot_locked()  # refresh final queue gauges
            self._write_status(force=True)
            from repro.sim import trials as _trials

            _trials.merge_fabric_metrics(self._metrics)
        return self._finish()

    # ------------------------------------------------------------------
    # cache probe
    # ------------------------------------------------------------------
    def _probe_cache(self) -> None:
        """Settle every unit whose result is already cached.

        Probed in deterministic unit order, so progress events and stats
        are reproducible run to run.
        """
        if self._cache is None:
            return
        from repro.sim import trials as _trials

        events = []
        for unit in self._queue.units:
            if unit.key is None:
                continue
            cached = self._cache.load(unit.key)
            if cached is None:
                continue
            with self._lock:
                st = self._queue.state[unit.uid]
                st.status = CACHED
                st.result = cached
                self._metrics.inc("fabric.cached")
                events.append(
                    {
                        "trial": unit.trial,
                        "point": unit.point,
                        "status": "cached",
                        "seconds": 0.0,
                    }
                )
            _trials.record_trial_cached(cached)
        for event in events:
            self._emit(event)
        self._write_status(force=True)

    # ------------------------------------------------------------------
    # settlement (the single state machine)
    # ------------------------------------------------------------------
    def _settle(
        self, uid: int, status: str, payload: object, seconds: float, source: str
    ) -> bool:
        with self._lock:
            event = self._settle_locked(uid, status, payload, seconds, source)
        if event is not None:
            self._emit(event)
        return event is not None

    def _settle_locked(
        self, uid: int, status: str, payload: object, seconds: float, source: str
    ) -> dict | None:
        """Apply one settle; returns the progress event or None if stale.

        Caller holds the broker lock.  ``"ok"`` settles are accepted for
        any unsettled unit (a late result from an expired lease is still
        the exact answer); ``"err"`` settles are only accepted from the
        unit's current owner, so a requeued unit is not double-penalized
        by its previous owner's post-mortem.
        """
        from repro.sim import trials as _trials

        st = self._queue.state[uid]
        unit = self._queue.units[uid]
        if st.status in SETTLED_STATES:
            return None
        remote = source not in _LOCAL_SOURCES

        if status == "ok":
            assert isinstance(payload, SimulationResult)
            st.status = DONE
            st.result = payload
            st.seconds = seconds
            st.attempts += 1
            st.owner = source
            st.deadline = None
            self._runs_settled += 1
            self._run_seconds += seconds
            self._metrics.inc("fabric.done")
            if remote:
                self._metrics.inc("fabric.remote_settled")
            _trials.record_trial_run(payload, seconds, remote=remote)
            if self._cache is not None and unit.key is not None:
                self._cache.store(unit.key, payload)
            return {
                "trial": unit.trial,
                "point": unit.point,
                "status": "ok",
                "seconds": seconds,
            }

        if st.status != RUNNING or st.owner != source:
            return None
        st.attempts += 1
        st.error = str(payload)
        if st.attempts > self._retries:
            st.status = FAILED
            st.owner = None
            st.deadline = None
            self._metrics.inc("fabric.failed")
            _trials.record_trials_failed(1)
        else:
            self._queue.requeue(uid)
            self._metrics.inc("fabric.retries")
            _trials.record_retries(1)
        return {
            "trial": unit.trial,
            "point": unit.point,
            "status": "err",
            "seconds": seconds,
        }

    def _emit(self, event: dict) -> None:
        if self._progress is not None:
            self._progress(event)

    def _expire_leases_locked(self, now: float) -> list[dict]:
        """Requeue units whose remote lease lapsed; returns progress events."""
        events = []
        for uid in self._queue.expired(now):
            owner = self._queue.state[uid].owner or "?"
            self._metrics.inc("fabric.lease_expired")
            event = self._settle_locked(
                uid,
                "err",
                f"lease expired (worker {owner!r} stopped responding)",
                0.0,
                source=owner,
            )
            if event is not None:
                events.append(event)
        return events

    # ------------------------------------------------------------------
    # local execution: serial
    # ------------------------------------------------------------------
    def _run_serial(self) -> None:
        """In-process dispatch loop (``n_jobs=1``); remote workers may
        still drain the queue concurrently through the listener."""
        while not self._shutdown.is_set():
            now = time.perf_counter()
            with self._lock:
                events = self._expire_leases_locked(now)
                unit = self._queue.lease("local", None)
                settled = self._queue.all_settled()
            for event in events:
                self._emit(event)
            if unit is None:
                if settled:
                    return
                # Remote workers own every live unit; wait for settles
                # (or lease expiries) to come through the listener.
                time.sleep(self._poll)
                self._write_status()
                continue
            config = self._queue.config_for(unit)
            out = execute_unit(
                (self._trial_fn, config, unit.uid, unit.seed_seq())
            )
            self._settle(out[0], out[1], out[2], out[3], source="local")
            self._write_status()

    # ------------------------------------------------------------------
    # local execution: process pool
    # ------------------------------------------------------------------
    def _new_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=min(self._n_jobs, len(self._queue)),
            mp_context=mp.get_context("spawn"),
        )

    def _run_pool(self) -> None:
        """Local pool dispatch: keep ``n_jobs`` units in flight, settle
        completions incrementally, survive broken pools and hangs."""
        executor = self._new_executor()
        futures: dict[Future, int] = {}
        last_completion = time.perf_counter()
        try:
            while not self._shutdown.is_set():
                now = time.perf_counter()
                leased: list = []
                with self._lock:
                    events = self._expire_leases_locked(now)
                    while len(futures) + len(leased) < self._n_jobs:
                        unit = self._queue.lease("pool", None)
                        if unit is None:
                            break
                        leased.append(unit)
                    settled = self._queue.all_settled()
                for event in events:
                    self._emit(event)
                if leased and not futures:
                    # The pool was idle (e.g. remote workers held the
                    # only live units); the hang window starts now, not
                    # at the last completion before the idle stretch.
                    last_completion = now
                for unit in leased:
                    args = (
                        self._trial_fn,
                        self._queue.config_for(unit),
                        unit.uid,
                        unit.seed_seq(),
                    )
                    try:
                        fut = executor.submit(execute_unit, args)
                    except BrokenExecutor:
                        executor.shutdown(wait=False, cancel_futures=True)
                        executor = self._new_executor()
                        fut = executor.submit(execute_unit, args)
                    futures[fut] = unit.uid

                if not futures:
                    if settled:
                        return
                    # Everything live is leased remotely.
                    time.sleep(self._poll)
                    self._write_status()
                    continue

                done, _ = wait(
                    set(futures),
                    timeout=self._poll,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    # RACE FIX (1/2): a future can complete between
                    # wait() timing out and this bookkeeping; re-check
                    # before treating the window as progress-free.
                    done = {fut for fut in futures if fut.done()}
                if done:
                    last_completion = time.perf_counter()
                    self._consume(done, futures)
                elif (
                    self._timeout is not None
                    and time.perf_counter() - last_completion > self._timeout
                ):
                    executor = self._expire_window(executor, futures)
                    futures = {}
                    last_completion = time.perf_counter()
                self._write_status()
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    def _consume(self, done: set, futures: dict) -> None:
        """Settle finished futures in deterministic (uid) order."""
        for fut in sorted(done, key=futures.__getitem__):
            uid = futures.pop(fut)
            try:
                _, status, payload, seconds = fut.result()
            # pool boundary: BrokenProcessPool / unpickle failures
            except BaseException as exc:  # reprolint: disable=R004 (pool boundary)
                status, payload, seconds = "err", f"worker died: {exc!r}", 0.0
            self._settle(uid, status, payload, seconds, source="pool")

    def _expire_window(
        self, executor: ProcessPoolExecutor, futures: dict
    ) -> ProcessPoolExecutor:
        """Handle a zero-completion timeout window: kill and retry.

        Every in-flight future is cancelled and its worker killed — but
        a future that completed *between the window check and here* is
        RACE FIX (2/2): its result is real and consumed normally, where
        the old dispatcher discarded it and re-ran the trial.
        """
        stranded = sorted(futures, key=futures.__getitem__)
        for fut in stranded:
            fut.cancel()
        _kill_workers(executor)
        executor.shutdown(wait=False, cancel_futures=True)
        finished = {
            fut for fut in stranded if fut.done() and not fut.cancelled()
        }
        self._consume(finished, futures)
        for fut in stranded:
            if fut in finished:
                continue
            uid = futures.pop(fut)
            self._settle(
                uid,
                "err",
                f"trial timed out (no completion within "
                f"{self._timeout}s window)",
                float(self._timeout or 0.0),
                source="pool",
            )
        return self._new_executor()

    # ------------------------------------------------------------------
    # remote workers (listener thread)
    # ------------------------------------------------------------------
    def _serve(self) -> None:
        sock = self._lsock
        assert sock is not None
        while not self._shutdown.is_set():
            try:
                conn, _peer = sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            try:
                with conn:
                    conn.settimeout(2.0)
                    request = read_frame_sync(conn)
                    if request is None:
                        continue
                    write_frame_sync(conn, self._handle_request(request))
            # one bad/dying worker connection must never take the broker
            # down; the unit it held comes back via lease expiry
            except (ProtocolError, OSError, ValueError):
                continue

    def _handle_request(self, request: dict) -> dict:
        op = request.get("op")
        now = time.perf_counter()
        if op == OP_LEASE:
            worker = str(request.get("worker", "?"))
            with self._lock:
                events = self._expire_leases_locked(now)
                self._workers_seen[worker] = now
                if self._queue.all_settled() or self._shutdown.is_set():
                    value: dict[str, Any] = {"unit": None, "shutdown": True}
                else:
                    unit = self._queue.lease(worker, now + self._lease_timeout)
                    if unit is None:
                        value = {"unit": None, "shutdown": False}
                    else:
                        self._metrics.inc("fabric.remote_leases")
                        value = {
                            "unit": unit_to_wire(
                                unit, self._queue.config_for(unit)
                            ),
                            "shutdown": False,
                        }
            for event in events:
                self._emit(event)
            return {"ok": True, "value": value}
        if op == OP_SETTLE:
            worker = str(request.get("worker", "?"))
            try:
                uid = int(request["uid"])
                status = str(request["status"])
                seconds = float(request.get("seconds", 0.0))
                if not 0 <= uid < len(self._queue):
                    raise ValueError(f"unknown uid {uid}")
                payload: object
                if status == "ok":
                    payload = result_from_wire(request["result"])
                else:
                    payload = str(request.get("error", "remote error"))
            except (KeyError, TypeError, ValueError, ProtocolError) as exc:
                return {"ok": False, "kind": "app", "error": str(exc)}
            with self._lock:
                self._workers_seen[worker] = now
            accepted = self._settle(uid, status, payload, seconds, worker)
            with self._lock:
                settled = self._queue.all_settled()
            return {
                "ok": True,
                "value": {"accepted": accepted, "shutdown": settled},
            }
        if op == OP_STATUS:
            with self._lock:
                snapshot = self._snapshot_locked()
            return {"ok": True, "value": snapshot}
        return {"ok": False, "kind": "app", "error": f"unknown op {op!r}"}

    def _close_listener(self) -> None:
        if self._lsock is not None:
            try:
                self._lsock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        if self._listener is not None:
            self._listener.join(timeout=2.0)

    # ------------------------------------------------------------------
    # status / metrics
    # ------------------------------------------------------------------
    def _snapshot_locked(self) -> dict[str, Any]:
        now = time.perf_counter()
        counts = self._queue.counts()
        remaining = counts[QUEUED] + counts[RUNNING]
        avg = self._run_seconds / self._runs_settled if self._runs_settled else 0.0
        active = sorted(
            name
            for name, seen in self._workers_seen.items()
            if now - seen <= _WORKER_ACTIVE_WINDOW
        )
        slots = max(1, self._n_jobs + len(active))
        eta = remaining * avg / slots if avg else None
        self._metrics.gauge("fabric.queued", counts[QUEUED])
        self._metrics.gauge("fabric.running", counts[RUNNING])
        if eta is not None:
            self._metrics.gauge("fabric.eta_seconds", round(eta, 2))

        points = []
        for p, point in enumerate(self._queue.points):
            settled = sum(
                1
                for unit, st in zip(self._queue.units, self._queue.state)
                if unit.point == p and st.status in SETTLED_STATES
            )
            failed = sum(
                1
                for unit, st in zip(self._queue.units, self._queue.state)
                if unit.point == p and st.status == FAILED
            )
            left = point.n_trials - settled
            points.append(
                {
                    "point": p,
                    "n_trials": point.n_trials,
                    "settled": settled,
                    "failed": failed,
                    "eta_seconds": round(left * avg / slots, 2) if avg else None,
                }
            )

        return {
            "format": STATUS_FORMAT,
            "total": len(self._queue),
            "queued": counts[QUEUED],
            "running": counts[RUNNING],
            "done": counts[DONE],
            "cached": counts[CACHED],
            "failed": counts[FAILED],
            "avg_trial_seconds": round(avg, 4),
            "eta_seconds": round(eta, 2) if eta is not None else None,
            "elapsed_seconds": (
                round(now - self._started, 2) if self._started else 0.0
            ),
            "local_slots": self._n_jobs,
            "remote_workers": active,
            "listen": (
                format_address(self._bound) if self._bound else None
            ),
            "metrics": self._metrics.as_dict(),
        }

    def _write_status(self, force: bool = False) -> None:
        if self._status_path is None:
            return
        now = time.perf_counter()
        if not force and now - self._last_status_write < 0.5:
            return
        self._last_status_write = now
        with self._lock:
            snapshot = self._snapshot_locked()
        payload = json.dumps(snapshot, sort_keys=True)
        self._status_path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self._status_path.parent, prefix=".tmp-status-"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp, self._status_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def _finish(self) -> list[TrialSet]:
        from repro.sim.trials import TrialFailure

        failed = self._queue.failed_units()
        n_completed = sum(
            1 for st in self._queue.state if st.status in (DONE, CACHED)
        )
        if failed:
            failures = tuple(
                TrialFailure(
                    trial_index=unit.trial,
                    seed_entropy=unit.entropy,
                    spawn_key=unit.spawn_key,
                    attempts=st.attempts,
                    error=st.error or "unknown error",
                )
                for unit, st in failed
            )
            lines = "\n".join(f"  - {f}" for f in failures)
            raise TrialError(
                f"{len(failures)}/{len(self._queue)} trial(s) failed after "
                f"{self._retries} retr{'y' if self._retries == 1 else 'ies'} "
                f"({n_completed} completed and preserved):\n{lines}",
                failures=failures,
                n_completed=n_completed,
            )
        out: list[TrialSet] = []
        for p, point in enumerate(self._queue.points):
            results: list[SimulationResult] = [None] * point.n_trials  # type: ignore[list-item]
            for unit, st in zip(self._queue.units, self._queue.state):
                if unit.point == p:
                    assert st.result is not None
                    results[unit.trial] = st.result
            out.append(TrialSet(config=point.config, results=results))
        return out


def _kill_workers(executor: ProcessPoolExecutor) -> None:
    """Best-effort SIGKILL of a pool's workers (hung-trial recovery)."""
    processes = getattr(executor, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.kill()
        except (OSError, AttributeError):
            pass
