"""Wire codecs for the fabric's broker/worker protocol.

The fabric reuses :mod:`repro.net.transport`'s length-prefixed JSON
frames and response envelopes (``{"ok": true, "value": ...}`` /
``{"ok": false, "kind": ..., "error": ...}``), so workers talk to the
broker with the same :func:`repro.net.transport.request` client the live
DHT layer uses — retry policy, error taxonomy and frame-size limits
included.

Three operations, each one request frame + one reply frame per
connection:

``lease``
    ``{"op": "lease", "worker": name}`` ->
    ``{"unit": <wire unit> | null, "shutdown": bool}``.  A null unit
    with ``shutdown`` false means "queue momentarily empty, poll again";
    with ``shutdown`` true the worker exits cleanly.

``settle``
    ``{"op": "settle", "worker": name, "uid": n, "status": "ok"|"err",
    "seconds": s, "result": <wire result> | "error": str}`` ->
    ``{"accepted": bool, "shutdown": bool}``.  ``accepted`` false means
    the broker already settled the unit (e.g. its lease expired and a
    retry landed first) — trials are pure functions of ``(config, seed
    path)``, so dropping a duplicate settle is always safe.

``status``
    ``{"op": "status"}`` -> the broker's live status snapshot (the same
    document ``repro fabric status --json`` prints).

A wire unit carries the work by value: the full config dict plus the
trial's ``SeedSequence`` coordinates (entropy, spawn key), so the remote
trial is bit-identical to a local one.  Results travel as
:func:`repro.sim.persistence.result_to_dict` documents with final loads
included — the exact representation the trial cache stores, which is
what makes broker-side incremental caching of remote results exact.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.config import SimulationConfig
from repro.errors import ProtocolError
from repro.fabric.queue import WorkUnit
from repro.sim.persistence import result_from_dict, result_to_dict
from repro.sim.results import SimulationResult

__all__ = [
    "OP_LEASE",
    "OP_SETTLE",
    "OP_STATUS",
    "config_from_wire",
    "config_to_wire",
    "result_from_wire",
    "result_to_wire",
    "unit_from_wire",
    "unit_to_wire",
]

OP_LEASE = "lease"
OP_SETTLE = "settle"
OP_STATUS = "status"


def config_to_wire(config: SimulationConfig) -> dict[str, Any]:
    """JSON-safe config document (tuples become lists in transit)."""
    return config.as_dict()


def config_from_wire(data: dict[str, Any]) -> SimulationConfig:
    """Rebuild a config; inverse of :func:`config_to_wire`."""
    try:
        fields = dict(data)
        fields["snapshot_ticks"] = tuple(fields.get("snapshot_ticks", ()))
        return SimulationConfig(**fields)
    except (TypeError, ValueError, KeyError) as exc:
        raise ProtocolError(f"bad config on the wire: {exc}") from exc


def unit_to_wire(unit: WorkUnit, config: SimulationConfig) -> dict[str, Any]:
    """One leased work unit, self-contained for a remote host.

    ``entropy`` travels as a string: seedless roots draw 128-bit
    entropy, and some JSON decoders mangle integers that wide.
    """
    return {
        "uid": unit.uid,
        "point": unit.point,
        "trial": unit.trial,
        "entropy": None if unit.entropy is None else str(unit.entropy),
        "spawn_key": list(unit.spawn_key),
        "config": config_to_wire(config),
    }


def unit_from_wire(
    data: dict[str, Any],
) -> tuple[int, SimulationConfig, np.random.SeedSequence]:
    """``(uid, config, seed_seq)`` for :func:`~repro.fabric.queue.execute_unit`."""
    try:
        uid = int(data["uid"])
        entropy = data.get("entropy")
        spawn_key = tuple(int(k) for k in data.get("spawn_key", ()))
        config = config_from_wire(data["config"])
    except (TypeError, ValueError, KeyError) as exc:
        raise ProtocolError(f"bad work unit on the wire: {exc}") from exc
    seed_seq = np.random.SeedSequence(
        entropy=None if entropy is None else int(entropy),
        spawn_key=spawn_key,
    )
    return uid, config, seed_seq


def result_to_wire(result: SimulationResult) -> str:
    """Cache-exact result document (final loads included).

    Pre-serialized to an opaque JSON *string*, not a nested object:
    :func:`repro.net.transport.encode_frame` canonicalizes frames with
    ``sort_keys=True``, which would silently re-order insertion-ordered
    dicts inside the result (``counters`` et al.) and break the fabric's
    byte-identity contract — a remotely-settled trial must produce the
    exact bytes a local run caches and ``save_sweep`` writes.
    """
    return json.dumps(result_to_dict(result, include_final_loads=True))


def result_from_wire(data: str | dict[str, Any]) -> SimulationResult:
    """Rebuild a settled result; raises ``ProtocolError`` on junk."""
    try:
        doc = json.loads(data) if isinstance(data, str) else dict(data)
        return result_from_dict(doc)
    # wire boundary: any decode failure (persistence/type/key errors)
    # must surface as one protocol error the broker can reject cleanly
    except Exception as exc:  # reprolint: disable=R004 (wire boundary, re-raised)
        raise ProtocolError(f"bad result on the wire: {exc}") from exc
