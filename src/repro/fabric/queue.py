"""Deterministic work queue for the trial fabric.

A sweep grid is a list of :class:`GridPoint`\\ s — ``(config,
n_trials)`` pairs.  :class:`TrialQueue` flattens the grid into one
ordered list of :class:`WorkUnit`\\ s, reusing the exact seed derivation
the serial runner has always had: trial *i* of a point with seed *s* is
the *i*-th child of ``numpy.random.SeedSequence(s)``, reconstructible on
any host as ``SeedSequence(entropy=s, spawn_key=(i,))``.  That makes a
work unit a value, not a reference: a broker can ship ``(config,
entropy, spawn_key)`` over a socket and the remote trial is
bit-identical to a local one.

The queue also owns per-unit settlement state (queued / running / done /
cached / failed, attempt counts, lease deadlines).  It is deliberately
*not* thread-safe on its own — the broker serializes all access under a
single lock, which keeps the state machine auditable in one place.

:func:`execute_unit` is the picklable worker entry point shared by the
local process pool and remote fabric workers; it is the direct
descendant of the old ``trials._trial_worker``.
"""

from __future__ import annotations

import os
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.config import SimulationConfig
from repro.errors import ConfigError
from repro.sim.cache import trial_key
from repro.sim.results import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (trials -> fabric)
    from repro.sim.trials import TrialFn

__all__ = [
    "CACHED",
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "SETTLED_STATES",
    "GridPoint",
    "TrialQueue",
    "UnitState",
    "WorkUnit",
    "execute_unit",
]

#: Unit lifecycle states.  ``queued`` units sit in the dispatch deque;
#: ``running`` units are leased to a local pool slot or a remote worker;
#: the three settled states are terminal.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
CACHED = "cached"
FAILED = "failed"
SETTLED_STATES = (DONE, CACHED, FAILED)


@dataclass(frozen=True)
class GridPoint:
    """One sweep point: a config and how many trials it needs."""

    config: SimulationConfig
    n_trials: int

    def __post_init__(self) -> None:
        if self.n_trials < 1:
            raise ConfigError(f"n_trials must be >= 1, got {self.n_trials}")


@dataclass(frozen=True)
class WorkUnit:
    """One trial, fully specified by value.

    ``entropy`` + ``spawn_key`` pin the exact ``SeedSequence`` child, so
    ``seed_seq()`` rebuilds the trial's generator stream on any host.
    ``key`` is the content-addressed cache key (``None`` for seedless
    points, which are never cached).
    """

    uid: int
    point: int
    trial: int
    entropy: int | None
    spawn_key: tuple[int, ...]
    key: str | None

    def seed_seq(self) -> np.random.SeedSequence:
        return np.random.SeedSequence(
            entropy=self.entropy, spawn_key=self.spawn_key
        )


@dataclass
class UnitState:
    """Mutable settlement state for one unit (broker-lock protected)."""

    status: str = QUEUED
    attempts: int = 0
    owner: str | None = None
    deadline: float | None = None
    result: SimulationResult | None = None
    error: str | None = None
    seconds: float = 0.0


class TrialQueue:
    """Flattened trial grid with per-unit settlement state.

    Units are created in deterministic ``(point, trial)`` order; the
    dispatch deque starts in that order and requeued units are appended
    at the tail.  Results are assembled by unit index, never by
    completion order, so the output is bit-identical regardless of how
    many workers raced over the queue.
    """

    def __init__(self, grid: Sequence[GridPoint], *, keyed: bool = False):
        self.points: list[GridPoint] = list(grid)
        if not self.points:
            raise ConfigError("trial grid must have at least one point")
        self.units: list[WorkUnit] = []
        for p, point in enumerate(self.points):
            root = np.random.SeedSequence(point.config.seed)
            cacheable = keyed and point.config.seed is not None
            for t, child in enumerate(root.spawn(point.n_trials)):
                self.units.append(
                    WorkUnit(
                        uid=len(self.units),
                        point=p,
                        trial=t,
                        entropy=child.entropy,
                        spawn_key=tuple(int(k) for k in child.spawn_key),
                        key=trial_key(point.config, child) if cacheable else None,
                    )
                )
        self.state: list[UnitState] = [UnitState() for _ in self.units]
        self._queue: deque[int] = deque(range(len(self.units)))

    def __len__(self) -> int:
        return len(self.units)

    def config_for(self, unit: WorkUnit) -> SimulationConfig:
        return self.points[unit.point].config

    # -- dispatch -------------------------------------------------------
    def lease(self, owner: str, deadline: float | None) -> WorkUnit | None:
        """Hand the next queued unit to ``owner``, or None if none queued.

        ``deadline`` (broker-clock seconds) bounds remote leases; local
        pool leases pass ``None`` — a hung local worker is handled by the
        broker's completion-timeout window instead.
        """
        while self._queue:
            uid = self._queue.popleft()
            st = self.state[uid]
            if st.status != QUEUED:  # settled while queued (stale entry)
                continue
            st.status = RUNNING
            st.owner = owner
            st.deadline = deadline
            return self.units[uid]
        return None

    def requeue(self, uid: int) -> None:
        """Put a running unit back at the tail of the dispatch queue."""
        st = self.state[uid]
        st.status = QUEUED
        st.owner = None
        st.deadline = None
        self._queue.append(uid)

    def expired(self, now: float) -> list[int]:
        """Uids of running units whose lease deadline has passed."""
        return [
            uid
            for uid, st in enumerate(self.state)
            if st.status == RUNNING
            and st.deadline is not None
            and now > st.deadline
        ]

    # -- accounting -----------------------------------------------------
    def counts(self) -> dict[str, int]:
        out = {QUEUED: 0, RUNNING: 0, DONE: 0, CACHED: 0, FAILED: 0}
        for st in self.state:
            out[st.status] += 1
        return out

    def all_settled(self) -> bool:
        return all(st.status in SETTLED_STATES for st in self.state)

    def any_running(self) -> bool:
        return any(st.status == RUNNING for st in self.state)

    def failed_units(self) -> list[tuple[WorkUnit, UnitState]]:
        return [
            (self.units[uid], st)
            for uid, st in enumerate(self.state)
            if st.status == FAILED
        ]


def execute_unit(
    args: tuple[
        "TrialFn | None", SimulationConfig, int, np.random.SeedSequence
    ]
) -> tuple[int, str, object, float]:
    """Run one work unit; exceptions come back as data.

    Returns ``(uid, "ok", result, seconds)`` or ``(uid, "err",
    traceback_string, seconds)`` — a raising trial must not take down the
    pool (or a remote worker's lease loop).  Shared verbatim by the
    in-process serial path, the local ``ProcessPoolExecutor`` (picklable
    module-level function) and ``repro fabric worker``.
    """
    from repro.sim.trials import run_trial

    trial_fn, config, uid, seed_seq = args
    delay_ms = os.environ.get("REPRO_TRIAL_DELAY_MS")
    if delay_ms:
        time.sleep(int(delay_ms) / 1000.0)
    # trial duration is reporting metadata, never simulation state
    t0 = time.perf_counter()  # reprolint: disable=R002 (duration meta)
    try:
        fn = trial_fn if trial_fn is not None else run_trial
        result = fn(config, seed_seq)
        elapsed = time.perf_counter() - t0  # reprolint: disable=R002 (meta)
        return (uid, "ok", result, elapsed)
    # worker boundary: *any* failure must come back as data, not take
    # down the pool
    except BaseException:  # reprolint: disable=R004 (worker boundary)
        elapsed = time.perf_counter() - t0  # reprolint: disable=R002 (meta)
        return (uid, "err", traceback.format_exc(limit=20), elapsed)
