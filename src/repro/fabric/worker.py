"""The fabric worker: lease, run, settle, repeat.

A worker is a plain synchronous pull loop against a broker's attach
socket — no state survives between iterations, which is exactly why a
worker can join a sweep mid-grid or die mid-trial without hurting
anything: the broker's lease timeout returns its in-flight unit to the
queue, and every trial it *did* settle is already in the cache.

Workers use :func:`repro.net.transport.request` (retry policy, backoff
and error taxonomy included), so transient broker hiccups are absorbed;
a broker that stays unreachable after first contact is treated as "the
sweep is over" rather than an error — the broker exits the moment its
queue settles, and racing workers are expected to outlive it briefly.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import TransientNetworkError
from repro.fabric.protocol import (
    OP_LEASE,
    OP_SETTLE,
    result_to_wire,
    unit_from_wire,
)
from repro.fabric.queue import execute_unit
from repro.net.transport import Address, RetryPolicy, request

__all__ = ["WorkerSummary", "run_worker"]

#: Lease/settle exchanges are small and the broker answers from memory;
#: short timeouts keep a dead broker from stalling the worker loop.
DEFAULT_WORKER_POLICY = RetryPolicy(timeout=5.0, retries=2, backoff=0.1)


@dataclass
class WorkerSummary:
    """What one worker loop did before exiting."""

    units_ok: int = 0
    units_err: int = 0
    clean_shutdown: bool = False
    broker_lost: bool = False

    @property
    def units_total(self) -> int:
        return self.units_ok + self.units_err

    def summary_line(self) -> str:
        parts = [f"{self.units_total} unit(s)", f"{self.units_ok} ok"]
        if self.units_err:
            parts.append(f"{self.units_err} err")
        if self.clean_shutdown:
            parts.append("clean shutdown")
        if self.broker_lost:
            parts.append("broker lost")
        return ", ".join(parts)


def run_worker(
    addr: Address,
    *,
    name: str | None = None,
    trial_fn: Callable | None = None,
    policy: RetryPolicy = DEFAULT_WORKER_POLICY,
    poll_interval: float = 0.5,
    max_units: int | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> WorkerSummary:
    """Drain work from the broker at ``addr`` until told to shut down.

    ``name`` identifies this worker in broker status and lease ownership
    (default ``worker-<pid>``).  ``trial_fn`` mirrors
    :func:`repro.sim.trials.run_trials` — it replaces
    :func:`~repro.sim.trials.run_trial` for fault-injection tests and
    custom engines.  ``max_units`` bounds how many units this worker
    settles (testing hook).  ``sleep`` is injectable so empty-queue
    polling is unit-testable without real waits.

    Raises :class:`~repro.errors.TransientNetworkError` only when the
    broker was *never* reachable; once first contact succeeds, a vanished
    broker ends the loop with ``broker_lost=True`` instead.
    """
    worker_name = name or f"worker-{os.getpid()}"
    summary = WorkerSummary()
    contacted = False
    while True:
        if max_units is not None and summary.units_total >= max_units:
            return summary
        try:
            lease = request(
                addr, {"op": OP_LEASE, "worker": worker_name}, policy=policy
            )
        except TransientNetworkError:
            if contacted:
                summary.broker_lost = True
                return summary
            raise
        contacted = True
        wire_unit = lease.get("unit")
        if wire_unit is None:
            if lease.get("shutdown"):
                summary.clean_shutdown = True
                return summary
            sleep(poll_interval)
            continue

        uid, config, seed_seq = unit_from_wire(wire_unit)
        _, status, payload, seconds = execute_unit(
            (trial_fn, config, uid, seed_seq)
        )
        settle: dict = {
            "op": OP_SETTLE,
            "worker": worker_name,
            "uid": uid,
            "status": status,
            "seconds": seconds,
        }
        if status == "ok":
            settle["result"] = result_to_wire(payload)  # type: ignore[arg-type]
        else:
            settle["error"] = str(payload)
        try:
            reply = request(addr, settle, policy=policy)
        except TransientNetworkError:
            summary.broker_lost = True
            return summary
        if status == "ok":
            summary.units_ok += 1
        else:
            summary.units_err += 1
        if reply.get("shutdown"):
            summary.clean_shutdown = True
            return summary
