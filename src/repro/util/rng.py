"""Reproducible random-stream management.

All stochastic components in the library draw from NumPy ``Generator``
objects derived from a single :class:`numpy.random.SeedSequence`.  Trials
of an experiment get *spawned* child sequences, so

* the same top-level seed always reproduces the same results, and
* trials are statistically independent and can run in parallel without
  sharing generator state.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

__all__ = ["make_rng", "spawn_rngs", "spawn_seeds"]

T = TypeVar("T")


def make_rng(seed: int | None | np.random.SeedSequence = None) -> np.random.Generator:
    """Build a PCG64 generator from a seed, SeedSequence, or fresh entropy."""
    if isinstance(seed, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(seed))
    return np.random.default_rng(seed)


def spawn_seeds(seed: int | None, count: int) -> list[np.random.SeedSequence]:
    """``count`` independent child seed sequences from a root seed."""
    root = np.random.SeedSequence(seed)
    return root.spawn(count)


def spawn_rngs(seed: int | None, count: int) -> list[np.random.Generator]:
    """``count`` independent generators from a root seed."""
    return [make_rng(child) for child in spawn_seeds(seed, count)]


def rng_state_fingerprint(rng: np.random.Generator) -> int:
    """Small integer fingerprint of generator state (determinism tests)."""
    state = rng.bit_generator.state["state"]
    if isinstance(state, dict):
        return hash(tuple(sorted((k, int(v)) for k, v in state.items())))
    return hash(int(state))


def interleave(seqs: Sequence[Sequence[T]]) -> list[T]:
    """Round-robin interleave several sequences (used by workload mixers)."""
    out: list[T] = []
    iters = [iter(s) for s in seqs]
    alive = list(iters)
    while alive:
        next_alive = []
        for it in alive:
            try:
                out.append(next(it))
                next_alive.append(it)
            except StopIteration:
                pass
        alive = next_alive
    return out
