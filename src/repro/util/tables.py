"""Plain-text table rendering for experiment output.

The experiment harness prints its reproduced tables in the same row/column
layout as the paper; this module owns the formatting so every experiment
renders consistently without pulling in heavyweight dependencies.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_float", "format_kv"]


def format_float(value: Any, digits: int = 3) -> str:
    """Format numbers compactly; pass through non-numeric cells."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    digits: int = 3,
    title: str | None = None,
) -> str:
    """Render a monospace table with aligned columns.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row sequences; cells are formatted with
        :func:`format_float`.
    digits:
        Decimal places for float cells.
    title:
        Optional title line printed above the table.
    """
    str_rows = [[format_float(c, digits) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_kv(pairs: dict[str, Any], *, digits: int = 3) -> str:
    """Render a key/value block, one pair per line, aligned keys."""
    if not pairs:
        return ""
    width = max(len(k) for k in pairs)
    return "\n".join(
        f"{k.ljust(width)} : {format_float(v, digits)}" for k, v in pairs.items()
    )
