"""Shared utilities: reproducible RNG streams and text tables."""

from repro.util.rng import make_rng, spawn_rngs, spawn_seeds
from repro.util.tables import format_float, format_kv, format_table

__all__ = [
    "make_rng",
    "spawn_rngs",
    "spawn_seeds",
    "format_table",
    "format_float",
    "format_kv",
]
