"""Inverted-index construction on ChordReduce.

The second canonical MapReduce workload: map each document to
``(word, doc_id)`` postings, reduce to sorted posting lists.  A search
application can then resolve queries against the index.  Demonstrates a
job whose reduce phase is substantial (one task per distinct word),
which is where balancing the *reduce* placement matters.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.apps.chordreduce import ChordReduce, JobReport
from repro.apps.wordcount import tokenize

__all__ = ["build_inverted_index", "search"]


def _map(entry: tuple[int, str]) -> Iterable[tuple[str, int]]:
    doc_id, text = entry
    for word in set(tokenize(text)):
        yield word, doc_id


def _reduce(_word: str, doc_ids: list[int]) -> tuple[int, ...]:
    return tuple(sorted(set(doc_ids)))


def build_inverted_index(
    documents: Iterable[str],
    *,
    n_nodes: int = 40,
    strategy: str = "none",
    seed: int | None = 0,
    **config_overrides,
) -> tuple[dict[str, tuple[int, ...]], JobReport]:
    """Build word → sorted doc-id postings over a simulated Chord DHT."""
    entries = list(enumerate(documents))
    job = ChordReduce(
        _map,
        _reduce,
        n_nodes=n_nodes,
        strategy=strategy,
        seed=seed,
        **config_overrides,
    )
    return job.run(entries)


def search(
    index: Mapping[str, tuple[int, ...]], query: str
) -> tuple[int, ...]:
    """Conjunctive (AND) query against the index; returns doc ids."""
    words = tokenize(query)
    if not words:
        return ()
    postings = [set(index.get(word, ())) for word in words]
    hits = set.intersection(*postings) if postings else set()
    return tuple(sorted(hits))
