"""Word count on ChordReduce — the canonical MapReduce demo.

Splits documents into words (map), sums occurrences per word (reduce).
Used by the ``chordreduce_wordcount`` example and the application tests
to show a real job finishing faster under the paper's balancing
strategies.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.apps.chordreduce import ChordReduce, JobReport

__all__ = ["word_count", "tokenize"]

_WORD = re.compile(r"[a-z0-9']+")


def tokenize(text: str) -> list[str]:
    """Lower-case word tokens of a document."""
    return _WORD.findall(text.lower())


def _map(document: str) -> Iterable[tuple[str, int]]:
    for word in tokenize(document):
        yield word, 1


def _reduce(_word: str, counts: list[int]) -> int:
    return sum(counts)


def word_count(
    documents: Iterable[str],
    *,
    n_nodes: int = 50,
    strategy: str = "none",
    seed: int | None = 0,
    **config_overrides,
) -> tuple[dict[str, int], JobReport]:
    """Count words across ``documents`` on a simulated Chord DHT."""
    job = ChordReduce(
        _map,
        _reduce,
        n_nodes=n_nodes,
        strategy=strategy,
        seed=seed,
        **config_overrides,
    )
    return job.run(list(documents))
