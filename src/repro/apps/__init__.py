"""Applications on the reproduced substrate: ChordReduce MapReduce."""

from repro.apps.chordreduce import ChordReduce, JobReport
from repro.apps.invertedindex import build_inverted_index, search
from repro.apps.wordcount import tokenize, word_count

__all__ = [
    "ChordReduce",
    "JobReport",
    "word_count",
    "tokenize",
    "build_inverted_index",
    "search",
]
