"""ChordReduce — MapReduce on a Chord DHT (the paper's prior work [20]).

The paper's motivation is running MapReduce-style jobs on a DHT, where
the load imbalance of hashed task keys directly becomes straggler
runtime.  This module provides a compact ChordReduce implementation on
top of the protocol layer:

* **map phase**: every input record is stored under the SHA key of its
  identifier; the responsible node (or whoever acquires the range via a
  balancing strategy) executes ``map_fn`` when it consumes the task and
  emits intermediate ``(key, value)`` pairs;
* **shuffle**: intermediate pairs are grouped by key and hashed back
  into the DHT as reduce tasks;
* **reduce phase**: the responsible nodes apply ``reduce_fn``.

Each phase runs as a :class:`~repro.chord.balance.ProtocolSimulation`
tick loop, so any of the paper's strategies can balance it — the point
of the whole exercise: the same job finishes in fewer ticks under
random injection than with no strategy (see the wordcount example and
``tests/test_chordreduce.py``).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable

from repro.chord.balance import ProtocolSimulation
from repro.config import SimulationConfig
from repro.errors import SimulationError
from repro.hashspace.hashing import sha1_id
from repro.hashspace.idspace import IdSpace

__all__ = ["ChordReduce", "JobReport"]

MapFn = Callable[[Any], Iterable[tuple[Hashable, Any]]]
ReduceFn = Callable[[Hashable, list[Any]], Any]


@dataclass
class JobReport:
    """Timing and balance accounting for one ChordReduce job."""

    map_ticks: int = 0
    reduce_ticks: int = 0
    map_factor: float = 0.0
    reduce_factor: float = 0.0
    n_map_tasks: int = 0
    n_reduce_tasks: int = 0
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def total_ticks(self) -> int:
        return self.map_ticks + self.reduce_ticks


class ChordReduce:
    """Run a MapReduce job over a simulated Chord DHT.

    Parameters
    ----------
    map_fn:
        ``record -> iterable of (key, value)`` pairs.
    reduce_fn:
        ``(key, [values]) -> result``.
    n_nodes:
        Network size for both phases.
    strategy:
        Any strategy name from :data:`repro.config.STRATEGY_NAMES`.
    bits / seed / max_sybils / ...:
        Forwarded to :class:`~repro.config.SimulationConfig`.
    """

    def __init__(
        self,
        map_fn: MapFn,
        reduce_fn: ReduceFn,
        *,
        n_nodes: int = 50,
        strategy: str = "none",
        bits: int = 48,
        seed: int | None = 0,
        **config_overrides: Any,
    ):
        self.map_fn = map_fn
        self.reduce_fn = reduce_fn
        self.n_nodes = n_nodes
        self.strategy = strategy
        self.bits = bits
        self.seed = seed
        self.config_overrides = config_overrides
        self.space = IdSpace(bits)

    # ------------------------------------------------------------------
    def run(self, records: Iterable[Any]) -> tuple[dict[Hashable, Any], JobReport]:
        """Execute the job; returns ``(results, report)``."""
        records = list(records)
        if not records:
            raise SimulationError("ChordReduce job has no input records")
        report = JobReport(n_map_tasks=len(records))

        # ---- map phase -------------------------------------------------
        map_items = {
            self._task_key("map", i): record
            for i, record in enumerate(records)
        }
        intermediate: dict[Hashable, list[Any]] = defaultdict(list)

        def run_map(_key: int, record: Any) -> None:
            for k, v in self.map_fn(record):
                intermediate[k].append(v)

        map_out = self._run_phase(map_items, run_map, phase_seed=0)
        report.map_ticks = map_out["runtime_ticks"]
        report.map_factor = map_out["runtime_factor"]

        # ---- shuffle + reduce phase -------------------------------------
        reduce_items = {
            self._task_key("reduce", key): (key, values)
            for key, values in intermediate.items()
        }
        report.n_reduce_tasks = len(reduce_items)
        results: dict[Hashable, Any] = {}

        def run_reduce(_key: int, payload: tuple[Hashable, list[Any]]) -> None:
            key, values = payload
            results[key] = self.reduce_fn(key, values)

        if reduce_items:
            reduce_out = self._run_phase(reduce_items, run_reduce, phase_seed=1)
            report.reduce_ticks = reduce_out["runtime_ticks"]
            report.reduce_factor = reduce_out["runtime_factor"]
            report.counters = {
                k: map_out.get(k, 0) + reduce_out.get(k, 0)
                for k in set(map_out) | set(reduce_out)
                if isinstance(map_out.get(k, 0), int)
                and isinstance(reduce_out.get(k, 0), int)
            }
        return dict(results), report

    # ------------------------------------------------------------------
    def _task_key(self, phase: str, ident: Hashable) -> int:
        key = sha1_id(f"{phase}:{ident!r}", self.space)
        return key

    def _run_phase(
        self,
        items: dict[int, Any],
        handler: Callable[[int, Any], None],
        phase_seed: int,
    ) -> dict:
        if len(items) != len(set(items)):  # pragma: no cover - dict keys
            raise SimulationError("task key collision")
        config = SimulationConfig(
            strategy=self.strategy,
            n_nodes=self.n_nodes,
            n_tasks=len(items),
            bits=self.bits,
            seed=None if self.seed is None else self.seed + phase_seed,
            **self.config_overrides,
        )
        sim = ProtocolSimulation(config, items=items, on_consume=handler)
        return sim.run()
