"""Balance-convergence analysis of simulation runs.

The paper's histogram figures are snapshots of an evolving distribution;
this module condenses whole trajectories into comparable scalars: how
fast a strategy gets (and keeps) the network busy, and how much total
node-time is wasted idling.  Used by the extension experiments and the
`strategy_comparison` example.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SimulationConfig
from repro.metrics.timeseries import TickSeries
from repro.sim.engine import TickEngine

__all__ = ["ConvergenceProfile", "profile_run", "utilization_auc"]


@dataclass(frozen=True)
class ConvergenceProfile:
    """Trajectory summary of one run.

    Attributes
    ----------
    runtime_ticks / runtime_factor:
        As usual.
    utilization_auc:
        Mean utilization over the run (1.0 = no node ever idled; the
        reciprocal of the runtime factor for a fixed-size network).
    ticks_to_half_idle:
        First tick where ≥50% of nodes are idle (∞ if never) — how long
        the network stays productive.
    wasted_node_ticks:
        Total idle node-ticks (the area the strategies are trying to
        reclaim).
    peak_network_size:
        Max concurrent identities (nodes + Sybils) — the footprint cost.
    """

    runtime_ticks: int
    runtime_factor: float
    utilization_auc: float
    ticks_to_half_idle: float
    wasted_node_ticks: int
    peak_network_size: int

    def as_dict(self) -> dict:
        return {
            "runtime_ticks": self.runtime_ticks,
            "runtime_factor": self.runtime_factor,
            "utilization_auc": self.utilization_auc,
            "ticks_to_half_idle": self.ticks_to_half_idle,
            "wasted_node_ticks": self.wasted_node_ticks,
            "peak_network_size": self.peak_network_size,
        }


def utilization_auc(series: TickSeries) -> float:
    """Mean fraction of in-network nodes doing work per tick."""
    util = series.utilization()
    return float(util.mean()) if util.size else 0.0


def profile_run(
    config: SimulationConfig,
    *,
    profiler=None,
    backend: str | None = None,
    shards: int = 1,
) -> ConvergenceProfile:
    """Run one simulation with time series on and summarize its trajectory.

    ``profiler`` optionally attaches a
    :class:`~repro.obs.profile.PhaseProfiler` to the engine so the
    caller gets a per-phase wall-clock breakdown alongside the
    convergence numbers (``repro profile`` does this).  ``backend`` and
    ``shards`` select the execution engine (:mod:`repro.sim.kernels`,
    :mod:`repro.sim.shard`); they shift where the phase time goes but
    never the seeded trajectory.
    """
    ts_config = config.with_updates(collect_timeseries=True)
    if shards > 1:
        from repro.sim.shard import ShardedTickEngine

        with ShardedTickEngine(
            ts_config, shards=shards, profiler=profiler, backend=backend
        ) as engine:
            result = engine.run()
    else:
        engine = TickEngine(ts_config, profiler=profiler, backend=backend)
        result = engine.run()
    series = result.timeseries
    assert series is not None
    arrays = series.as_arrays()

    active = arrays["n_in_network"].astype(float)
    idle = arrays["idle_owners"].astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        idle_frac = np.where(active > 0, idle / active, 1.0)
    half = np.flatnonzero(idle_frac >= 0.5)
    ticks_to_half = float(arrays["ticks"][half[0]]) if half.size else float(
        "inf"
    )
    return ConvergenceProfile(
        runtime_ticks=result.runtime_ticks,
        runtime_factor=result.runtime_factor,
        utilization_auc=utilization_auc(series),
        ticks_to_half_idle=ticks_to_half,
        wasted_node_ticks=int(idle.sum()),
        peak_network_size=int(arrays["n_slots"].max()) if len(series) else 0,
    )
