"""Analysis beyond raw metrics: closed-form theory and trajectory profiles."""

from repro.analysis.convergence import (
    ConvergenceProfile,
    profile_run,
    utilization_auc,
)
from repro.analysis.theory import (
    expected_baseline_factor,
    expected_idle_fraction,
    expected_max_workload,
    expected_median_workload,
    expected_workload_std,
    harmonic,
    predicted_histogram,
    workload_ccdf,
)

__all__ = [
    "harmonic",
    "expected_baseline_factor",
    "expected_median_workload",
    "expected_workload_std",
    "expected_max_workload",
    "expected_idle_fraction",
    "workload_ccdf",
    "predicted_histogram",
    "ConvergenceProfile",
    "profile_run",
    "utilization_auc",
]
