"""Closed-form theory behind the paper's measurements.

With ``n`` node identifiers i.i.d. uniform on a circle, the normalized
responsibility-arc lengths follow a symmetric Dirichlet distribution;
each individual arc is ``Beta(1, n-1) ≈ Exp(1/n)`` for large n.  Every
quantitative signature in the paper's Tables I–II follows:

* **median workload** ≈ ``ln 2 · T/n`` (Table I: 692.3 for T/n = 1000);
* **σ of workload** ≈ ``T/n`` (Table I: σ ≈ mean in every row);
* **baseline runtime factor** = expected maximum arc × n =
  ``H_n = 1 + 1/2 + … + 1/n ≈ ln n + γ`` (Table II churn-0 row:
  7.476 ≈ H₁₀₀₀ = 7.485, 5.02–5.04 ≈ a touch below H₁₀₀ = 5.187);
* the full workload CCDF is ``(1 + x/n)^{-(n-1)} ≈ e^{-x}`` in units of
  the mean (Figure 1's heavy tail).

This module provides those predictions, used by tests to validate the
simulator *against theory* (not just against the paper's numbers) and by
the ``theory_vs_simulation`` analysis in the experiments.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "harmonic",
    "expected_baseline_factor",
    "expected_median_workload",
    "expected_workload_std",
    "workload_ccdf",
    "expected_max_workload",
    "predicted_histogram",
    "expected_idle_fraction",
]


def harmonic(n: int) -> float:
    """The n-th harmonic number H_n = Σ 1/k (exact for small n)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if n < 10_000:
        return float(np.sum(1.0 / np.arange(1, n + 1)))
    # Euler–Maclaurin for large n
    g = 0.5772156649015329
    return math.log(n) + g + 1 / (2 * n) - 1 / (12 * n * n)


def expected_baseline_factor(n_nodes: int) -> float:
    """Expected no-strategy runtime factor.

    The runtime is set by the most loaded node; the expected maximum of n
    i.i.d. Exp(mean 1/n) arcs is H_n / n of the ring, so the factor is
    H_n.  (Finite task sampling pulls it slightly below H_n when the
    per-node task count is small.)
    """
    return harmonic(n_nodes)


def expected_median_workload(n_nodes: int, n_tasks: int) -> float:
    """Median per-node workload ≈ ln 2 × mean (exponential arcs)."""
    return math.log(2.0) * n_tasks / n_nodes


def expected_workload_std(n_nodes: int, n_tasks: int) -> float:
    """σ of per-node workload.

    Workload = Binomial(T, arc); with arc ~ Exp(1/n) the variance is
    mean² (from the arc) + mean (from the sampling), so
    σ = sqrt(m² + m) with m = T/n.
    """
    m = n_tasks / n_nodes
    return math.sqrt(m * m + m)


def workload_ccdf(x: np.ndarray, n_nodes: int, n_tasks: int) -> np.ndarray:
    """P(workload > x) under the exponential-arc model."""
    m = n_tasks / n_nodes
    return np.exp(-np.asarray(x, dtype=float) / m)


def expected_max_workload(n_nodes: int, n_tasks: int) -> float:
    """Expected heaviest node's workload ≈ H_n × mean."""
    return harmonic(n_nodes) * n_tasks / n_nodes


def expected_idle_fraction(
    n_nodes: int, n_tasks: int, tick: int
) -> float:
    """Fraction of nodes finished by ``tick`` with no balancing.

    A node with initial load L ≤ tick is idle; under the exponential
    model P(L ≤ t) = 1 − e^{−t/m}.
    """
    m = n_tasks / n_nodes
    return float(1.0 - math.exp(-tick / m))


def predicted_histogram(
    edges: np.ndarray, n_nodes: int, n_tasks: int
) -> np.ndarray:
    """Expected node counts per workload bin for a fresh network."""
    edges = np.asarray(edges, dtype=float)
    ccdf = workload_ccdf(edges, n_nodes, n_tasks)
    return n_nodes * (ccdf[:-1] - ccdf[1:])
