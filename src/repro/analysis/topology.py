"""Graph-theoretic analysis of Chord overlay topology (networkx).

Chord's finger graph is what gives O(log n) routing; this module builds
the overlay as a directed graph (successor edges + finger edges) and
measures the properties the Chord paper promises — average shortest
path ≈ ½·log₂ n, diameter O(log n), in-degree balance — so that the
protocol implementation's routing structure can be validated
graph-theoretically, not only by sampling lookups.

networkx is an optional dependency (declared under the ``analysis``
extra); importing this module without it raises a clear error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

try:
    import networkx as nx
except ImportError as _err:  # pragma: no cover
    raise ImportError(
        "repro.analysis.topology requires networkx "
        "(pip install repro[analysis])"
    ) from _err

from repro.chord.ring import ChordRing

__all__ = ["overlay_graph", "TopologyReport", "analyze_topology"]


def overlay_graph(ring: ChordRing, *, include_fingers: bool = True) -> "nx.DiGraph":
    """The ring's routing graph: successor edges (+ finger edges)."""
    graph = nx.DiGraph()
    alive = ring.network.alive_ids()
    graph.add_nodes_from(alive)
    for ident in alive:
        node = ring.network.node(ident)
        for sid in node.successor_list:
            if sid != ident and ring.network.is_alive(sid):
                graph.add_edge(ident, sid, kind="successor")
        if include_fingers:
            for entry in node.fingers.known_ids():
                if entry != ident and ring.network.is_alive(entry):
                    if not graph.has_edge(ident, entry):
                        graph.add_edge(ident, entry, kind="finger")
    return graph


@dataclass(frozen=True)
class TopologyReport:
    """Routing-graph metrics of one overlay snapshot."""

    n_nodes: int
    n_edges: int
    strongly_connected: bool
    avg_path_length: float
    diameter: int
    max_in_degree: int
    mean_out_degree: float

    def as_dict(self) -> dict:
        return {
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "strongly_connected": self.strongly_connected,
            "avg_path_length": self.avg_path_length,
            "diameter": self.diameter,
            "max_in_degree": self.max_in_degree,
            "mean_out_degree": self.mean_out_degree,
        }


def analyze_topology(ring: ChordRing) -> TopologyReport:
    """Measure the overlay; raises on an empty ring."""
    graph = overlay_graph(ring)
    n = graph.number_of_nodes()
    if n == 0:
        raise ValueError("empty overlay")
    connected = nx.is_strongly_connected(graph)
    if connected and n > 1:
        avg = nx.average_shortest_path_length(graph)
        diameter = nx.diameter(graph)
    else:
        avg = float("inf") if n > 1 else 0.0
        diameter = -1
    in_degrees = [d for _, d in graph.in_degree()]
    out_degrees = [d for _, d in graph.out_degree()]
    return TopologyReport(
        n_nodes=n,
        n_edges=graph.number_of_edges(),
        strongly_connected=connected,
        avg_path_length=float(avg),
        diameter=int(diameter),
        max_in_degree=int(max(in_degrees, default=0)),
        mean_out_degree=float(np.mean(out_degrees)) if out_degrees else 0.0,
    )
