"""Simulation configuration — the paper's experimental variables (§V-B).

Every knob in the paper's "Experimental Variables" subsection appears here
with the paper's default value:

========================  =====================================  ========
Paper variable            Field                                  Default
========================  =====================================  ========
Strategy                  ``strategy``                           "none"
Homogeneity               ``heterogeneous``                      False
Work Measurement          ``work_measurement``                   "one"
Network Size              ``n_nodes``                            1000
Number of Tasks           ``n_tasks``                            100_000
Churn Rate                ``churn_rate``                         0.0
Max Sybils                ``max_sybils``                         5
Sybil Threshold           ``sybil_threshold``                    0
Successors                ``num_successors``                     5
========================  =====================================  ========

Additional fields capture details the paper fixes implicitly (the 5-tick
decision cadence for Sybil strategies, §IV-B) or leaves under-specified
(see DESIGN.md "Interpretation decisions").

Every field declared here must be *read* somewhere outside this module —
reprolint rule R005 (config-drift) fails the build on dead knobs, so a
refactor cannot silently disconnect a paper variable from the simulator
(see docs/static-analysis.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Literal

from repro.errors import ConfigError

__all__ = [
    "AdversaryModel",
    "FailureModel",
    "SimulationConfig",
    "STRATEGY_NAMES",
]

#: Strategy registry keys understood by :func:`repro.core.make_strategy`.
STRATEGY_NAMES = (
    "none",
    "churn",
    "random_injection",
    "neighbor_injection",
    "smart_neighbor_injection",
    "invitation",
    # extensions implementing the paper's §VII future work
    "strength_invitation",
    "proportional_injection",
    "relocation",
)

WorkMeasurement = Literal["one", "strength"]
Placement = Literal["random", "midpoint", "median"]


@dataclass(frozen=True)
class FailureModel:
    """Failure-injection knobs, default-off (the paper's §V idealization).

    The paper assumes every departure is graceful and backups are
    aggressive enough that "node death loses no data".  This group makes
    that assumption a parameter instead of a constant:

    ``crash_fraction``
        Fraction of churn departures that are crash-stop instead of
        graceful.  A crashed owner's tasks survive only where one of its
        ``replication_factor`` successors holds a backup.
    ``replication_factor``
        Number of successor backups ``r``.  ``None`` keeps the paper's
        perfect-backup idealization (every key is recoverable); ``0``
        means no backups at all.
    ``message_loss_rate``
        Protocol layer only: probability that any RPC is dropped in
        transit (:class:`repro.chord.network.SimNetwork`).
    ``crash_detection_ticks``
        Protocol layer only: how many network ticks a crash-stop node
        still *appears* alive to liveness probes before peers detect the
        failure.

    All defaults are inert: a default ``FailureModel`` changes neither
    RNG consumption nor results, so seeded runs stay bit-identical.
    """

    crash_fraction: float = 0.0
    replication_factor: int | None = None
    message_loss_rate: float = 0.0
    crash_detection_ticks: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.crash_fraction <= 1.0:
            raise ConfigError(
                f"crash_fraction must be in [0, 1], got {self.crash_fraction}"
            )
        if self.replication_factor is not None and self.replication_factor < 0:
            raise ConfigError(
                f"replication_factor must be >= 0 or None, "
                f"got {self.replication_factor}"
            )
        if not 0.0 <= self.message_loss_rate <= 1.0:
            raise ConfigError(
                f"message_loss_rate must be in [0, 1], "
                f"got {self.message_loss_rate}"
            )
        if self.crash_detection_ticks < 0:
            raise ConfigError(
                f"crash_detection_ticks must be >= 0, "
                f"got {self.crash_detection_ticks}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any knob departs from the paper's idealization."""
        return (
            self.crash_fraction > 0.0
            or self.replication_factor is not None
            or self.message_loss_rate > 0.0
            or self.crash_detection_ticks > 0
        )

    def as_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class AdversaryModel:
    """Adversarial-Sybil knobs, default-off (attack/defense plane).

    The paper's Sybils are benevolent; this group injects *hostile*
    ones so the balancing strategies can be stress-tested against the
    canonical DHT attacks (see docs/adversarial.md):

    ``eclipse_sybils``
        Number of coordinated Sybil slots one attacker concentrates in
        a victim arc at ``attack_tick`` to capture that arc's keys.
    ``eclipse_arc_fraction``
        Width of the eclipsed arc as a fraction of the id space.
    ``free_riders``
        Number of adversarial owners that join the ring, accept keys,
        and consume at rate 0 (tasks parked on them never finish).
    ``churn_amplification``
        Per-decision-round probability of a targeted crash against the
        heaviest honest in-network owner.
    ``attack_tick``
        Tick at which eclipse/free-rider injection happens.
    ``join_cost``
        SybilControl-style defense: joining/creating any Sybil slot
        costs this much budget, drawn from a per-owner account that
        starts full.  ``0`` disables the defense.
    ``join_budget_refill``
        Budget units refilled per tick (capped at ``join_cost``).
    ``detection_interval``
        Defense cadence: every this many ticks, per-arc Sybil-density
        detection runs and evicts flagged owners.  ``0`` disables it.
    ``density_threshold``
        Slots one owner must hold inside a single detection arc to be
        flagged (eclipse signature).

    All defaults are inert: a default ``AdversaryModel`` changes
    neither RNG consumption nor results, so seeded runs stay
    bit-identical (pinned in tests/test_adversary.py).
    """

    eclipse_sybils: int = 0
    eclipse_arc_fraction: float = 0.05
    free_riders: int = 0
    churn_amplification: float = 0.0
    attack_tick: int = 1
    join_cost: int = 0
    join_budget_refill: int = 1
    detection_interval: int = 0
    density_threshold: int = 4

    def __post_init__(self) -> None:
        if self.eclipse_sybils < 0:
            raise ConfigError(
                f"eclipse_sybils must be >= 0, got {self.eclipse_sybils}"
            )
        if not 0.0 < self.eclipse_arc_fraction <= 0.5:
            raise ConfigError(
                f"eclipse_arc_fraction must be in (0, 0.5], "
                f"got {self.eclipse_arc_fraction}"
            )
        if self.free_riders < 0:
            raise ConfigError(
                f"free_riders must be >= 0, got {self.free_riders}"
            )
        if not 0.0 <= self.churn_amplification <= 1.0:
            raise ConfigError(
                f"churn_amplification must be in [0, 1], "
                f"got {self.churn_amplification}"
            )
        if self.attack_tick < 1:
            raise ConfigError(
                f"attack_tick must be >= 1, got {self.attack_tick}"
            )
        if self.join_cost < 0:
            raise ConfigError(
                f"join_cost must be >= 0, got {self.join_cost}"
            )
        if self.join_budget_refill < 1:
            raise ConfigError(
                f"join_budget_refill must be >= 1, "
                f"got {self.join_budget_refill}"
            )
        if self.detection_interval < 0:
            raise ConfigError(
                f"detection_interval must be >= 0, "
                f"got {self.detection_interval}"
            )
        if self.density_threshold < 2:
            raise ConfigError(
                f"density_threshold must be >= 2, "
                f"got {self.density_threshold}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any attack or defense departs from the paper's model."""
        return (
            self.eclipse_sybils > 0
            or self.free_riders > 0
            or self.churn_amplification > 0.0
            or self.join_cost > 0
            or self.detection_interval > 0
        )

    @property
    def n_adversaries(self) -> int:
        """Adversarial owner slots to preallocate in the registry."""
        n = self.free_riders
        if self.eclipse_sybils > 0:
            n += 1  # the eclipse attacker is one coordinated owner
        return n

    def as_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class SimulationConfig:
    """Full parameterization of one simulated computation.

    Instances are immutable; derive variants with :meth:`with_updates`.
    """

    # -- paper variables -------------------------------------------------
    strategy: str = "none"
    n_nodes: int = 1000
    n_tasks: int = 100_000
    heterogeneous: bool = False
    work_measurement: WorkMeasurement = "one"
    churn_rate: float = 0.0
    max_sybils: int = 5
    sybil_threshold: int = 0
    num_successors: int = 5

    # -- cadence and interpretation knobs (DESIGN.md) ---------------------
    decision_interval: int = 5
    invite_factor: float = 1.0
    placement: Placement = "random"
    avoid_failed_ranges: bool = False

    # -- workload-shape extensions (beyond the paper; defaults match it) --
    key_distribution: Literal["uniform", "clustered", "zipf"] = "uniform"
    n_clusters: int = 8
    cluster_spread: float = 0.01
    zipf_exponent: float = 1.2
    arrival_rate: float = 0.0
    arrival_until: int = 0

    # -- failure injection (default-off; see FailureModel) ----------------
    failures: FailureModel = field(default_factory=FailureModel)

    # -- adversarial Sybils (default-off; see AdversaryModel) -------------
    adversary: AdversaryModel = field(default_factory=AdversaryModel)

    # -- machinery --------------------------------------------------------
    seed: int | None = 0
    bits: int = 64
    max_ticks: int = 2_000_000
    snapshot_ticks: tuple[int, ...] = field(default=())
    collect_timeseries: bool = False

    def __post_init__(self) -> None:
        if isinstance(self.failures, dict):
            # persistence round-trip: SimulationConfig(**as_dict())
            object.__setattr__(self, "failures", FailureModel(**self.failures))
        elif not isinstance(self.failures, FailureModel):
            raise ConfigError(
                f"failures must be a FailureModel or dict, "
                f"got {type(self.failures).__name__}"
            )
        if isinstance(self.adversary, dict):
            # persistence round-trip: SimulationConfig(**as_dict())
            object.__setattr__(
                self, "adversary", AdversaryModel(**self.adversary)
            )
        elif not isinstance(self.adversary, AdversaryModel):
            raise ConfigError(
                f"adversary must be an AdversaryModel or dict, "
                f"got {type(self.adversary).__name__}"
            )
        if self.strategy not in STRATEGY_NAMES:
            raise ConfigError(
                f"unknown strategy {self.strategy!r}; expected one of "
                f"{STRATEGY_NAMES}"
            )
        if self.n_nodes <= 0:
            raise ConfigError(f"n_nodes must be positive, got {self.n_nodes}")
        if self.n_tasks < 0:
            raise ConfigError(f"n_tasks must be >= 0, got {self.n_tasks}")
        if not 0.0 <= self.churn_rate <= 1.0:
            raise ConfigError(
                f"churn_rate must be in [0, 1], got {self.churn_rate}"
            )
        if self.max_sybils < 0:
            raise ConfigError(f"max_sybils must be >= 0, got {self.max_sybils}")
        if self.heterogeneous and self.max_sybils < 1:
            raise ConfigError(
                "heterogeneous networks need max_sybils >= 1 (strength range)"
            )
        if self.sybil_threshold < 0:
            raise ConfigError(
                f"sybil_threshold must be >= 0, got {self.sybil_threshold}"
            )
        if self.num_successors < 1:
            raise ConfigError(
                f"num_successors must be >= 1, got {self.num_successors}"
            )
        if self.decision_interval < 1:
            raise ConfigError(
                f"decision_interval must be >= 1, got {self.decision_interval}"
            )
        if self.work_measurement not in ("one", "strength"):
            raise ConfigError(
                f"work_measurement must be 'one' or 'strength', "
                f"got {self.work_measurement!r}"
            )
        if self.placement not in ("random", "midpoint", "median"):
            raise ConfigError(f"unknown placement {self.placement!r}")
        if self.bits < 8 or self.bits > 64:
            raise ConfigError(
                f"simulator id space must be 8..64 bits, got {self.bits}"
            )
        if self.max_ticks < 1:
            raise ConfigError(f"max_ticks must be >= 1, got {self.max_ticks}")
        if self.invite_factor <= 0:
            raise ConfigError(
                f"invite_factor must be positive, got {self.invite_factor}"
            )
        if self.key_distribution not in ("uniform", "clustered", "zipf"):
            raise ConfigError(
                f"unknown key_distribution {self.key_distribution!r}"
            )
        if self.n_clusters < 1:
            raise ConfigError(f"n_clusters must be >= 1, got {self.n_clusters}")
        if not 0.0 < self.cluster_spread <= 0.5:
            raise ConfigError(
                f"cluster_spread must be in (0, 0.5], got {self.cluster_spread}"
            )
        if self.zipf_exponent <= 1.0:
            raise ConfigError(
                f"zipf_exponent must be > 1, got {self.zipf_exponent}"
            )
        if self.arrival_rate < 0:
            raise ConfigError(
                f"arrival_rate must be >= 0, got {self.arrival_rate}"
            )
        if self.arrival_until < 0:
            raise ConfigError(
                f"arrival_until must be >= 0, got {self.arrival_until}"
            )

    # ------------------------------------------------------------------
    @property
    def tasks_per_node(self) -> float:
        """Mean initial tasks per node — the paper's load ratio."""
        return self.n_tasks / self.n_nodes

    @property
    def uses_sybils(self) -> bool:
        """Whether the configured strategy creates Sybil nodes."""
        return self.strategy in (
            "random_injection",
            "neighbor_injection",
            "smart_neighbor_injection",
            "invitation",
            "strength_invitation",
            "proportional_injection",
        )

    def with_updates(self, **changes: Any) -> "SimulationConfig":
        """Return a copy with the given fields replaced (validated)."""
        return replace(self, **changes)

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict form (for CSV/JSON export and result provenance)."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["failures"] = self.failures.as_dict()
        data["adversary"] = self.adversary.as_dict()
        return data
