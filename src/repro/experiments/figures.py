"""Shared machinery for the histogram figures (Figures 4–14).

Every such figure compares the workload distribution of two networks —
identical starting configuration, different strategy — at a fixed tick
(0, 5, or 35).  This module runs the pair with per-tick snapshots and
packages shared-bin histograms plus the summary statistics the captions
cite ("the highest load is around 500 tasks ... compared to approximately
650 with no strategy").

Both runs use the same seed; the engine draws node ids and task keys
before any strategy acts, so the two networks start from the *identical*
configuration, as the paper requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import SimulationConfig
from repro.experiments.spec import ExperimentResult
from repro.metrics.histograms import Histogram, histogram, shared_edges
from repro.sim.engine import TickEngine

__all__ = ["NetworkRun", "run_with_snapshots", "comparison_figure", "SNAPSHOT_TICKS"]

#: ticks the paper inspects
SNAPSHOT_TICKS: tuple[int, ...] = (0, 5, 35)


@dataclass
class NetworkRun:
    """One simulated network with its snapshot load vectors."""

    label: str
    config: SimulationConfig
    loads_at: dict[int, np.ndarray] = field(default_factory=dict)
    runtime_factor: float = 0.0
    counters: dict[str, int] = field(default_factory=dict)


def run_with_snapshots(
    label: str,
    config: SimulationConfig,
    ticks: tuple[int, ...] = SNAPSHOT_TICKS,
) -> NetworkRun:
    """Run one network to completion, capturing loads at ``ticks``."""
    engine = TickEngine(config.with_updates(snapshot_ticks=tuple(ticks)))
    result = engine.run()
    return NetworkRun(
        label=label,
        config=config,
        loads_at=engine.snapshot_loads(),
        runtime_factor=result.runtime_factor,
        counters=result.counters,
    )


def paired_histograms(
    run_a: NetworkRun, run_b: NetworkRun, tick: int, n_bins: int = 40
) -> tuple[Histogram, Histogram]:
    """Histograms of both networks at one tick against shared bin edges."""
    loads_a = run_a.loads_at[tick]
    loads_b = run_b.loads_at[tick]
    edges = shared_edges([loads_a, loads_b], n_bins=n_bins)
    return (
        histogram(loads_a, edges, tick=tick, label=run_a.label),
        histogram(loads_b, edges, tick=tick, label=run_b.label),
    )


def comparison_figure(
    experiment_id: str,
    title: str,
    config_a: SimulationConfig,
    config_b: SimulationConfig,
    label_a: str,
    label_b: str,
    *,
    ticks: tuple[int, ...] = SNAPSHOT_TICKS,
    focus_ticks: tuple[int, ...] | None = None,
    notes: str = "",
    scale: str = "quick",
) -> ExperimentResult:
    """Run two networks and package the figure's histogram comparison.

    ``focus_ticks`` selects the ticks the paper's figure actually shows
    (rows are emitted only for those); snapshots are captured at all
    ``ticks`` so related figures can share one run.
    """
    run_a = run_with_snapshots(label_a, config_a, ticks)
    run_b = run_with_snapshots(label_b, config_b, ticks)
    focus = focus_ticks if focus_ticks is not None else ticks

    rows = []
    histograms: dict[int, tuple[Histogram, Histogram]] = {}
    for tick in ticks:
        pair = paired_histograms(run_a, run_b, tick)
        histograms[tick] = pair
        if tick not in focus:
            continue
        for hist, run in zip(pair, (run_a, run_b)):
            stats = hist.stats
            rows.append(
                [
                    tick,
                    run.label,
                    stats.n,
                    stats.median,
                    stats.max,
                    round(stats.idle_fraction, 4),
                    round(stats.gini, 4),
                ]
            )
    rows.append(
        ["end", run_a.label, "-", "-", "-", "-", round(run_a.runtime_factor, 3)]
    )
    rows.append(
        ["end", run_b.label, "-", "-", "-", "-", round(run_b.runtime_factor, 3)]
    )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=[
            "tick",
            "network",
            "nodes",
            "median load",
            "max load",
            "idle frac",
            "gini | factor",
        ],
        rows=rows,
        data={
            "histograms": histograms,
            "runs": {label_a: run_a, label_b: run_b},
        },
        notes=notes,
        scale=scale,
    )
