"""Scalar results quoted in the running text of §VI.

The paper's evaluation section states a number of point results that are
not in any table; this experiment measures each one.  Claim ids:

======  ==============================================================
T1      Random injection, 1000n/1e5t homog: mean factor in [1.36, 1.7]
T2      Random injection, 1000n/1e6t homog: mean factor in [1.12, 1.25]
T3      Same tasks/node ratio → similar factors; the smaller network
        (100n/1e5t) is slightly faster than 1000n/1e6t (paper Δ≈0.086)
T4      Neighbor injection base factor: 1000n/1e5t (paper 5.033,
        2.4 below no-strategy) and 100n/1e4t (paper 3.006, 2 below)
T5      Smart neighbor beats estimating neighbor (paper Δ≈1.2)
T6      Invitation: 100n/1e5t (paper 3.749) vs 1000n/1e5t (paper 5.673)
        — bigger networks hurt the invitation strategy
======  ==============================================================

We require the *relationships* to hold (who wins, directions, orderings);
absolute magnitudes are recorded side-by-side with the paper's.
"""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.experiments.spec import ExperimentResult, resolve_scale, trials_for
from repro.sim.trials import run_trials

__all__ = ["run", "measure_mean_factor"]


def measure_mean_factor(
    strategy: str,
    n_nodes: int,
    n_tasks: int,
    n_trials: int,
    seed: int,
    n_jobs: int = 1,
    **overrides,
) -> float:
    config = SimulationConfig(
        strategy=strategy, n_nodes=n_nodes, n_tasks=n_tasks, seed=seed,
        **overrides,
    )
    return run_trials(config, n_trials, n_jobs=n_jobs).mean_factor


def run(scale: str | None = None, seed: int = 0, n_jobs: int = 1) -> ExperimentResult:
    scale = resolve_scale(scale)
    n_trials = trials_for(scale, quick=3, full=50)
    rows: list[list] = []

    # T1 / T2 — random injection headline factors
    t1 = measure_mean_factor(
        "random_injection", 1000, 100_000, n_trials, seed, n_jobs
    )
    t2 = measure_mean_factor(
        "random_injection", 1000, 1_000_000, max(2, n_trials // 2), seed, n_jobs
    )
    rows.append(["T1", "random 1000n/1e5t", t1, "1.36..1.70"])
    rows.append(["T2", "random 1000n/1e6t", t2, "1.12..1.25"])

    # T3 — same tasks/node ratio, different absolute size
    t3_small = measure_mean_factor(
        "random_injection", 100, 100_000, n_trials, seed, n_jobs
    )
    rows.append(
        ["T3", "random 100n/1e5t (smaller net, same ratio)", t3_small,
         f"slightly below 1000n/1e6t={t2:.3f} (paper delta 0.086)"]
    )

    # T4 — neighbor injection base factors vs no strategy
    none_big = measure_mean_factor("none", 1000, 100_000, n_trials, seed, n_jobs)
    nb_big = measure_mean_factor(
        "neighbor_injection", 1000, 100_000, n_trials, seed, n_jobs
    )
    none_small = measure_mean_factor("none", 100, 10_000, n_trials, seed, n_jobs)
    nb_small = measure_mean_factor(
        "neighbor_injection", 100, 10_000, n_trials, seed, n_jobs
    )
    rows.append(["T4a", "neighbor 1000n/1e5t", nb_big, "5.033 (paper)"])
    rows.append(
        ["T4b", "improvement vs none 1000n/1e5t", none_big - nb_big,
         "2.4 (paper)"]
    )
    rows.append(["T4c", "neighbor 100n/1e4t", nb_small, "3.006 (paper)"])
    rows.append(
        ["T4d", "improvement vs none 100n/1e4t", none_small - nb_small,
         "2.0 (paper)"]
    )

    # T5 — smart neighbor vs estimating neighbor
    smart_big = measure_mean_factor(
        "smart_neighbor_injection", 1000, 100_000, n_trials, seed, n_jobs
    )
    rows.append(
        ["T5", "smart neighbor gain over estimate", nb_big - smart_big,
         "1.2 (paper, avg homog+hetero)"]
    )

    # T6 — invitation and network size
    inv_small = measure_mean_factor(
        "invitation", 100, 100_000, n_trials, seed, n_jobs
    )
    inv_big = measure_mean_factor(
        "invitation", 1000, 100_000, n_trials, seed, n_jobs
    )
    rows.append(["T6a", "invitation 100n/1e5t", inv_small, "3.749 (paper)"])
    rows.append(["T6b", "invitation 1000n/1e5t", inv_big, "5.673 (paper)"])
    rows.append(
        ["T6c", "invitation: big minus small network", inv_big - inv_small,
         "positive (paper 1.924)"]
    )

    return ExperimentResult(
        experiment_id="text_claims",
        title=f"Scalar claims from §VI text (avg of {n_trials} trials)",
        headers=["claim", "quantity", "measured", "paper"],
        rows=rows,
        data={
            "none_1000n_1e5t": none_big,
            "random_1000n_1e5t": t1,
            "random_1000n_1e6t": t2,
            "neighbor_1000n_1e5t": nb_big,
            "smart_1000n_1e5t": smart_big,
            "invitation_100n_1e5t": inv_small,
            "invitation_1000n_1e5t": inv_big,
        },
        notes=(
            "Pass criteria are relational: random < smart < neighbor <= "
            "invitation at 1000n/1e5t; every strategy beats no-strategy; "
            "invitation degrades with network size; more tasks help "
            "random injection."
        ),
        scale=scale,
    )
