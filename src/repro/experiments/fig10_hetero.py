"""Figure 10 — heterogeneous networks: random injection vs no strategy.

Same comparison as Figure 8 but on *heterogeneous* networks (node
strength uniform in 1..maxSybils; a node may keep as many Sybils as its
strength).  The paper: "Heterogeneous networks also saw significantly
better performance, but the gains were not as great as in homogeneous
networks."
"""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.experiments.figures import comparison_figure
from repro.experiments.spec import ExperimentResult, resolve_scale

__all__ = ["run"]


def run(scale: str | None = None, seed: int = 0, n_jobs: int = 1) -> ExperimentResult:
    scale = resolve_scale(scale)
    base = SimulationConfig(
        strategy="none",
        n_nodes=1000,
        n_tasks=100_000,
        heterogeneous=True,
        seed=seed,
    )
    random_inj = base.with_updates(strategy="random_injection")
    return comparison_figure(
        "fig10",
        "Heterogeneous networks at tick 35: random injection vs none "
        "(1000n/1e5t)",
        random_inj,
        base,
        "random injection (hetero)",
        "no strategy (hetero)",
        focus_ticks=(35,),
        notes=(
            "Expected: random injection shows a better work distribution "
            "(lower idle fraction / gini) but smaller runtime-factor gain "
            "than the homogeneous Figure 8 comparison."
        ),
        scale=scale,
    )
