"""Experiment execution with run manifests.

A paper-scale reproduction is hours of compute; when it finishes (or is
killed) you want a durable record of what actually ran: which trials
were computed fresh, which came from the content-addressed cache, which
failed and were retried, and how long a trial costs.  This module wraps
:func:`repro.experiments.registry.run_experiment` to produce that record
— a :class:`RunManifest` per experiment — which the CLI prints after
every run and ``repro report`` persists as ``manifest.json``.

Resume workflow: because completion is recorded per trial in the cache
(see :mod:`repro.sim.cache`), there is no separate checkpoint file —
re-running an interrupted experiment or sweep *is* the resume, and the
manifest's ``trials_cached`` count shows how much work the interruption
preserved.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.experiments.registry import run_experiment
from repro.experiments.spec import ExperimentResult
from repro.obs.metrics import MetricsRegistry
from repro.sim.cache import (
    CACHE_SCHEMA_VERSION,
    cache_enabled,
    default_cache_dir,
)

__all__ = ["RunManifest", "run_with_manifest", "save_manifests"]

# v2 added the unified ``metrics`` block (counters/gauges registry, see
# repro.obs.metrics); ``run_stats`` stays for v1 consumers.
MANIFEST_FORMAT = "repro.run_manifest.v2"


@dataclass
class RunManifest:
    """Provenance and accounting for one experiment execution."""

    experiment_id: str
    scale: str
    seed: int
    n_jobs: int
    wall_s: float
    started_at: float
    cache_dir: str
    cache_enabled: bool
    cache_schema: int
    run_stats: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "format": MANIFEST_FORMAT,
            "experiment_id": self.experiment_id,
            "scale": self.scale,
            "seed": self.seed,
            "n_jobs": self.n_jobs,
            "wall_s": self.wall_s,
            "started_at": self.started_at,
            "cache_dir": self.cache_dir,
            "cache_enabled": self.cache_enabled,
            "cache_schema": self.cache_schema,
            "run_stats": dict(self.run_stats),
            "metrics": dict(self.metrics),
        }

    def summary_line(self) -> str:
        stats = self.run_stats
        total = stats.get("trials_run", 0) + stats.get("trials_cached", 0)
        parts = [
            f"{total} trials",
            f"{stats.get('trials_cached', 0)} cached",
            f"{stats.get('trials_run', 0)} run",
        ]
        if stats.get("retries"):
            parts.append(f"{stats['retries']} retried")
        if stats.get("trials_failed"):
            parts.append(f"{stats['trials_failed']} FAILED")
        if stats.get("trials_truncated"):
            parts.append(f"{stats['trials_truncated']} TRUNCATED")
        if stats.get("trials_data_loss"):
            parts.append(f"{stats['trials_data_loss']} with data loss")
        avg = stats.get("avg_trial_seconds", 0.0)
        if avg:
            parts.append(f"{avg:.3f}s/trial")
        parts.append(f"{self.wall_s:.1f}s wall")
        return ", ".join(parts)

    def flags(self) -> list[str]:
        """Warnings the report must surface next to this experiment's
        numbers: aggregates silently containing truncated or lossy
        trials misrepresent the runtime factors."""
        out: list[str] = []
        truncated = self.run_stats.get("trials_truncated", 0)
        if truncated:
            out.append(
                f"{truncated} trial(s) hit max_ticks without finishing — "
                "their runtime factors understate the truth"
            )
        lossy = self.run_stats.get("trials_data_loss", 0)
        if lossy:
            out.append(
                f"{lossy} trial(s) lost tasks to failures — factors are "
                "over *surviving* work only"
            )
        return out


def run_with_manifest(
    experiment_id: str,
    scale: str | None = None,
    seed: int = 0,
    n_jobs: int = 1,
) -> tuple[ExperimentResult, RunManifest]:
    """Run one experiment and build its manifest."""
    # absolute timestamp: manifest provenance, never simulation state
    started = time.time()  # reprolint: disable=R002 (provenance)
    result = run_experiment(
        experiment_id, scale=scale, seed=seed, n_jobs=n_jobs
    )
    run_stats = dict(result.meta.get("run_stats", {}))
    wall_s = float(result.meta.get("wall_s", 0.0))
    registry = MetricsRegistry()
    for key, value in run_stats.items():
        if key.endswith("_seconds"):
            registry.gauge(f"trials.{key}", float(value))
        else:
            registry.inc(f"trials.{key}", int(value))
    # dispatch-layer accounting from the fabric broker(s) the experiment
    # ran under: queue counters, retries, lease expiries, remote settles
    fabric = result.meta.get("fabric_metrics", {})
    registry.merge_counters(fabric.get("counters", {}))
    registry.merge_gauges(fabric.get("gauges", {}))
    registry.gauge("run.wall_seconds", wall_s)
    manifest = RunManifest(
        experiment_id=experiment_id,
        scale=result.scale,
        seed=seed,
        n_jobs=n_jobs,
        wall_s=wall_s,
        started_at=started,
        cache_dir=str(default_cache_dir()),
        cache_enabled=cache_enabled(),
        cache_schema=CACHE_SCHEMA_VERSION,
        run_stats=run_stats,
        metrics=registry.as_dict(),
    )
    return result, manifest


def save_manifests(
    manifests: list[RunManifest], path: str | Path
) -> Path:
    """Write one JSON document covering several experiment runs."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            {
                "format": MANIFEST_FORMAT,
                "runs": [m.as_dict() for m in manifests],
            },
            indent=2,
        )
    )
    return path
