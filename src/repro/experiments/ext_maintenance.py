"""Extension experiment: the churn maintenance-cost frontier.

The paper's footnote 2: beyond churn ≈ 0.01 the runtime gains show
"significantly diminishing returns ... One facet not captured by our
simulations, but is significant, is the rising maintenance costs after
that point.  This makes any amount of churn after a certain point
prohibitively expensive."

We capture that facet: the tick simulator counts churn events and the
keys physically re-transferred by joins/leaves, giving a cost axis to
put against the runtime-factor axis.  The frontier makes the paper's
"use Sybils, not raw churn" argument quantitative — random injection
reaches a far better factor while moving far fewer keys.
"""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.experiments.spec import ExperimentResult, resolve_scale, trials_for
from repro.sim.trials import run_trials

__all__ = ["run", "CHURN_RATES"]

CHURN_RATES = (0.0001, 0.001, 0.005, 0.01, 0.02, 0.05)


def run(scale: str | None = None, seed: int = 0, n_jobs: int = 1) -> ExperimentResult:
    scale = resolve_scale(scale)
    n_trials = trials_for(scale, quick=3, full=50)
    size = (1000, 100_000) if scale == "full" else (300, 30_000)
    rows = []
    measured = {}
    for churn in CHURN_RATES:
        config = SimulationConfig(
            strategy="churn",
            n_nodes=size[0],
            n_tasks=size[1],
            churn_rate=churn,
            seed=seed,
        )
        trials = run_trials(config, n_trials, n_jobs=n_jobs)
        means = trials.counter_means()
        events = means.get("churn_joins", 0) + means.get("churn_leaves", 0)
        keys_moved = means.get("churn_keys_moved", 0)
        measured[churn] = {
            "factor": trials.mean_factor,
            "events": events,
            "keys_moved": keys_moved,
        }
        rows.append(
            [
                f"{churn:g}",
                trials.mean_factor,
                int(events),
                int(keys_moved),
                round(keys_moved / size[1], 2),
            ]
        )
    # the Sybil comparison point
    sybil = run_trials(
        SimulationConfig(
            strategy="random_injection",
            n_nodes=size[0],
            n_tasks=size[1],
            seed=seed,
        ),
        n_trials,
        n_jobs=n_jobs,
    )
    sybil_moved = sybil.counter_means().get("tasks_acquired", 0)
    rows.append(
        [
            "sybil",
            sybil.mean_factor,
            int(sybil.counter_means().get("sybils_created", 0)),
            int(sybil_moved),
            round(sybil_moved / size[1], 2),
        ]
    )
    return ExperimentResult(
        experiment_id="ext_maintenance",
        title=(
            f"Churn cost/benefit frontier ({size[0]}n/{size[1]}t, "
            f"avg of {n_trials} trials)"
        ),
        headers=[
            "churn rate",
            "mean factor",
            "events",
            "keys moved",
            "keys moved / job",
        ],
        rows=rows,
        data={"measured": measured, "sybil_factor": sybil.mean_factor},
        notes=(
            "Expected: factors keep falling with churn but key-transfer "
            "costs rise linearly; random injection ('sybil' row) beats "
            "every churn point on both axes — footnote 2 made quantitative."
        ),
        scale=scale,
    )
