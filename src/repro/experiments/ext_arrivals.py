"""Extension experiment: streaming task arrivals.

The paper assumes the whole job is present at tick 0 (§V: "the data
necessary is already present").  Real ChordReduce deployments receive
work continuously; this extension feeds tasks in at a Poisson rate for a
warm-up window and measures how each strategy keeps up.

With arrivals, the meaningful comparison is *makespan after the last
arrival*: once injection stops, how long does the drain take?  A
balanced network drains in ≈ remaining/capacity ticks; an unbalanced one
drags for the straggler's whole backlog.
"""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.experiments.spec import ExperimentResult, resolve_scale, trials_for
from repro.sim.trials import run_trials

__all__ = ["run", "STRATEGIES"]

STRATEGIES = ("none", "churn", "random_injection", "invitation")


def run(scale: str | None = None, seed: int = 0, n_jobs: int = 1) -> ExperimentResult:
    scale = resolve_scale(scale)
    n_trials = trials_for(scale, quick=3, full=50)
    if scale == "full":
        n_nodes, initial, rate, until = 1000, 50_000, 500.0, 200
    else:
        n_nodes, initial, rate, until = 300, 15_000, 150.0, 100
    rows = []
    measured = {}
    for strategy in STRATEGIES:
        config = SimulationConfig(
            strategy=strategy,
            n_nodes=n_nodes,
            n_tasks=initial,
            arrival_rate=rate,
            arrival_until=until,
            churn_rate=0.01 if strategy == "churn" else 0.0,
            seed=seed,
        )
        trials = run_trials(config, n_trials, n_jobs=n_jobs)
        means = trials.counter_means()
        drain = (
            sum(r.runtime_ticks for r in trials.results) / trials.n_trials
            - until
        )
        measured[strategy] = {
            "factor": trials.mean_factor,
            "drain_after_arrivals": drain,
        }
        rows.append(
            [
                strategy,
                trials.mean_factor,
                round(drain, 1),
                int(means.get("tasks_arrived", 0)),
            ]
        )
    return ExperimentResult(
        experiment_id="ext_arrivals",
        title=(
            f"Streaming arrivals ({n_nodes}n, {initial} initial + "
            f"~{rate:.0f}/tick for {until} ticks, avg of {n_trials} trials)"
        ),
        headers=[
            "strategy",
            "mean factor",
            "drain ticks after last arrival",
            "avg tasks arrived",
        ],
        rows=rows,
        data={"measured": measured},
        notes=(
            "Expected: balancing strategies drain the post-arrival "
            "backlog several times faster than the baseline; arrivals "
            "keep re-seeding idle regions, so even churn does well."
        ),
        scale=scale,
    )
