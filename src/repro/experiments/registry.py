"""Index of every reproduced experiment, keyed by stable id.

Used by the CLI (``repro run <id>``), the benchmark harness, and the
EXPERIMENTS.md generator.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import ExperimentError
from repro.sim.trials import fabric_metrics, reset_run_stats, run_stats
from repro.experiments import (
    ablations,
    ext_adversarial,
    ext_arrivals,
    ext_failures,
    ext_future_work,
    ext_maintenance,
    ext_skew,
    fig01_distribution,
    fig02_03_ring,
    fig04_06_churn,
    fig07_09_random,
    fig10_hetero,
    fig11_12_neighbor,
    fig13_14_invitation,
    table1,
    table2,
    text_claims,
)
from repro.experiments.spec import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "experiment_ids"]

EXPERIMENTS: dict[str, tuple[str, Callable[..., ExperimentResult]]] = {
    "table1": ("Table I: median task distribution", table1.run),
    "table2": ("Table II: runtime factor under churn", table2.run),
    "fig01": ("Figure 1: workload probability distribution", fig01_distribution.run),
    "fig02_03": ("Figures 2-3: ring visualizations", fig02_03_ring.run),
    "fig04_06": ("Figures 4-6: churn vs none histograms", fig04_06_churn.run),
    "fig07_09": ("Figures 7-9: random injection histograms", fig07_09_random.run),
    "fig10": ("Figure 10: heterogeneous networks", fig10_hetero.run),
    "fig11_12": ("Figures 11-12: neighbor injection", fig11_12_neighbor.run),
    "fig13_14": ("Figures 13-14: invitation", fig13_14_invitation.run),
    "text_claims": ("Scalar claims from the §VI text", text_claims.run),
    "ablations": ("Ablations A-F over secondary variables", ablations.run),
    "ext_skew": ("Extension: skewed key distributions", ext_skew.run),
    "ext_future_work": (
        "Extension: §VII future-work strategies",
        ext_future_work.run,
    ),
    "ext_maintenance": (
        "Extension: churn maintenance-cost frontier",
        ext_maintenance.run,
    ),
    "ext_arrivals": ("Extension: streaming task arrivals", ext_arrivals.run),
    "ext_failures": (
        "Extension: crash-stop failures and replication",
        ext_failures.run,
    ),
    "ext_adversarial": (
        "Extension: hostile-Sybil attacks and defenses",
        ext_adversarial.run,
    ),
}


def experiment_ids() -> list[str]:
    return list(EXPERIMENTS)


def run_experiment(
    experiment_id: str,
    scale: str | None = None,
    seed: int = 0,
    n_jobs: int = 1,
) -> ExperimentResult:
    """Run one experiment by id.

    Trial accounting for the run (trials run/cached/failed, retries,
    seconds per trial) is collected across every ``run_trials`` call the
    experiment makes and attached as ``result.meta["run_stats"]``; the
    CLI and the report builder surface it, and
    :mod:`repro.experiments.runner` folds it into the run manifest.
    """
    try:
        _, fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{sorted(EXPERIMENTS)}"
        ) from None
    reset_run_stats()
    # wall_s is reporting metadata, never simulation state
    t0 = time.perf_counter()  # reprolint: disable=R002 (wall-clock meta)
    result = fn(scale=scale, seed=seed, n_jobs=n_jobs)
    result.meta["run_stats"] = run_stats().as_dict()
    result.meta["fabric_metrics"] = fabric_metrics().as_dict()
    result.meta["wall_s"] = round(
        time.perf_counter() - t0, 3  # reprolint: disable=R002 (meta)
    )
    return result
