"""Figures 13–14 — the invitation strategy at tick 35.

1000 nodes / 100,000 tasks:

* Figure 13: invitation vs no strategy — "the highest load is around 500
  tasks in the network using invitation, compared to approximately 650
  ... using no strategy".
* Figure 14: invitation vs smart neighbor injection — invitation keeps
  fewer nodes at *small* workloads and more at large ones (it only acts
  when someone is overloaded), yet distributes the heavy tail better.
"""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.experiments.figures import comparison_figure
from repro.experiments.spec import ExperimentResult, resolve_scale

__all__ = ["run"]


def run(scale: str | None = None, seed: int = 0, n_jobs: int = 1) -> ExperimentResult:
    scale = resolve_scale(scale)
    base = SimulationConfig(
        strategy="none", n_nodes=1000, n_tasks=100_000, seed=seed
    )
    invitation = base.with_updates(strategy="invitation")
    smart = base.with_updates(strategy="smart_neighbor_injection")

    fig13 = comparison_figure(
        "fig13",
        "Invitation vs no strategy at tick 35 (1000n/1e5t)",
        invitation,
        base,
        "invitation",
        "no strategy",
        focus_ticks=(35,),
        scale=scale,
    )
    fig14 = comparison_figure(
        "fig14",
        "Invitation vs smart neighbor injection at tick 35 (1000n/1e5t)",
        invitation,
        smart,
        "invitation",
        "smart neighbor injection",
        focus_ticks=(35,),
        scale=scale,
    )
    return ExperimentResult(
        experiment_id="fig13_14",
        title="Figures 13-14: invitation strategy at tick 35",
        headers=fig13.headers,
        rows=fig13.rows + fig14.rows,
        data={"fig13": fig13, "fig14": fig14},
        notes=(
            "Expected: invitation cuts the max load vs baseline (~500 vs "
            "~650) and, vs smart neighbor, has fewer low-load nodes and "
            "more high-load ones (reactive vs proactive)."
        ),
        scale=scale,
    )
