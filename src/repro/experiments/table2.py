"""Table II — runtime factor under the Churn strategy.

Grid: churn rate ∈ {0, 0.0001, 0.001, 0.01} × five network compositions
(10³ nodes with 10⁵/10⁶ tasks; 10² nodes with 10⁴/10⁵/10⁶ tasks), each
cell the average runtime factor of 100 trials on homogeneous networks
consuming one task per tick.  The paper's finding: even small churn
helps, gains grow with the task count, and 100 nodes/10⁶ tasks at churn
0.01 lands only ~30% above ideal.
"""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.experiments.spec import ExperimentResult, resolve_scale, trials_for
from repro.sim.trials import run_trials

__all__ = ["run", "PAPER_TABLE2", "CHURN_RATES", "NETWORKS"]

CHURN_RATES: list[float] = [0.0, 0.0001, 0.001, 0.01]

#: (nodes, tasks) columns exactly as printed
NETWORKS: list[tuple[int, int]] = [
    (1000, 100_000),
    (1000, 1_000_000),
    (100, 10_000),
    (100, 100_000),
    (100, 1_000_000),
]

#: paper cell values: PAPER_TABLE2[churn][(nodes, tasks)]
PAPER_TABLE2: dict[float, dict[tuple[int, int], float]] = {
    0.0: {
        (1000, 100_000): 7.476,
        (1000, 1_000_000): 7.467,
        (100, 10_000): 5.043,
        (100, 100_000): 5.022,
        (100, 1_000_000): 5.016,
    },
    0.0001: {
        (1000, 100_000): 7.122,
        (1000, 1_000_000): 5.732,
        (100, 10_000): 4.934,
        (100, 100_000): 4.362,
        (100, 1_000_000): 3.077,
    },
    0.001: {
        (1000, 100_000): 6.047,
        (1000, 1_000_000): 3.674,
        (100, 10_000): 4.391,
        (100, 100_000): 3.019,
        (100, 1_000_000): 1.863,
    },
    0.01: {
        (1000, 100_000): 3.721,
        (1000, 1_000_000): 2.104,
        (100, 10_000): 3.076,
        (100, 100_000): 1.873,
        (100, 1_000_000): 1.309,
    },
}


def _networks_for(scale: str) -> list[tuple[int, int]]:
    if scale == "full":
        return NETWORKS
    # quick: drop only the slowest cell (100 nodes / 1e6 tasks at low
    # churn runs ~50k ticks per trial)
    return [net for net in NETWORKS if net != (100, 1_000_000)]


def cell(
    nodes: int,
    tasks: int,
    churn: float,
    n_trials: int,
    seed: int,
    n_jobs: int = 1,
) -> float:
    """Mean runtime factor for one Table II cell."""
    config = SimulationConfig(
        strategy="churn" if churn > 0 else "none",
        n_nodes=nodes,
        n_tasks=tasks,
        churn_rate=churn,
        seed=seed,
    )
    return run_trials(config, n_trials, n_jobs=n_jobs).mean_factor


def run(scale: str | None = None, seed: int = 0, n_jobs: int = 1) -> ExperimentResult:
    """Reproduce Table II at the requested scale."""
    scale = resolve_scale(scale)
    n_trials = trials_for(scale, quick=3, full=100)
    networks = _networks_for(scale)
    headers = ["Churn Rate"] + [
        f"{n}n/{t:.0e}t" for n, t in networks
    ] + [f"paper:{n}n/{t:.0e}t" for n, t in networks]
    rows = []
    measured: dict[float, dict[tuple[int, int], float]] = {}
    for churn in CHURN_RATES:
        measured[churn] = {}
        row: list = [f"{churn:g}"]
        for net in networks:
            value = cell(net[0], net[1], churn, n_trials, seed, n_jobs)
            measured[churn][net] = value
            row.append(value)
        row.extend(PAPER_TABLE2[churn][net] for net in networks)
        rows.append(row)
    return ExperimentResult(
        experiment_id="table2",
        title=(
            "Runtime factor under the Churn strategy "
            f"(avg of {n_trials} trials)"
        ),
        headers=headers,
        rows=rows,
        paper_expected={
            str(churn): {str(k): v for k, v in cells.items()}
            for churn, cells in PAPER_TABLE2.items()
        },
        data={"measured": measured, "networks": networks},
        notes=(
            "Expected shape: factors fall monotonically with churn; the "
            "benefit grows with the task count; 100n/1e6t at churn 0.01 "
            "approaches ~1.3x ideal."
        ),
        scale=scale,
    )
