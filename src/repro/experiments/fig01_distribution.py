"""Figure 1 — workload probability distribution, 1000 nodes / 10⁶ tasks.

The paper plots the probability of each workload level in a fresh
network, with a vertical dashed line at the median (692 tasks): "the bulk
of the nodes have less than 1000 tasks and a few unfortunate nodes are
burdened with more than 10,000 tasks".  We regenerate the same
log-binned density and verify both caption claims, plus the §III
statement that the distribution is heavy-tailed (exponential
responsibilities → Zipf-like rank–size tail).
"""

from __future__ import annotations

import numpy as np

from repro.config import SimulationConfig
from repro.experiments.spec import ExperimentResult, resolve_scale
from repro.metrics.balance import load_stats
from repro.metrics.distribution import fit_exponential, zipf_tail_exponent
from repro.metrics.histograms import histogram, log_edges
from repro.sim.engine import TickEngine

__all__ = ["run"]


def run(scale: str | None = None, seed: int = 0, n_jobs: int = 1) -> ExperimentResult:
    scale = resolve_scale(scale)
    config = SimulationConfig(n_nodes=1000, n_tasks=1_000_000, seed=seed)
    engine = TickEngine(config)
    loads = engine.network_loads()

    stats = load_stats(loads)
    edges = log_edges(stats.max, n_bins=40)
    hist = histogram(loads, edges, tick=0, label="initial")
    fit = fit_exponential(loads)
    tail = zipf_tail_exponent(loads)

    frac_below_1000 = float((loads < 1000).mean())
    frac_above_10000 = float((loads > 10_000).mean())

    rows = [
        ["median workload", stats.median, "≈692 (paper fig. 1 dashed line)"],
        ["mean workload", stats.mean, "1000 (tasks/nodes)"],
        ["fraction below 1000 tasks", frac_below_1000, "'bulk of the nodes'"],
        [
            "fraction above 10000 tasks",
            frac_above_10000,
            "'a few unfortunate nodes'",
        ],
        ["max workload", stats.max, ">10000"],
        ["exponential fit scale", fit.scale, "≈ mean (exponential arcs)"],
        ["exponential KS statistic", fit.ks_statistic, "small"],
        ["zipf tail exponent", tail, "negative (heavy tail)"],
    ]
    return ExperimentResult(
        experiment_id="fig01",
        title=(
            "Probability distribution of workload, 1000 nodes / 1e6 tasks"
        ),
        headers=["quantity", "measured", "paper expectation"],
        rows=rows,
        data={
            "histogram": hist,
            "density": hist.density(),
            "edges": np.asarray(edges),
            "loads": loads,
        },
        notes=(
            "The 'probability' series of the paper's figure is "
            "data['density'] over data['edges'] (log-spaced bins)."
        ),
        scale=scale,
    )
