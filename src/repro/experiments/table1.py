"""Table I — median task distribution among nodes.

The paper's Table I assigns ``tasks`` SHA-1 keys to ``nodes`` hash-placed
nodes and reports, over 100 trials, the median per-node workload and its
standard deviation.  The signature result: the median is ≈ ln 2 × the
mean workload (nodes' responsibility arcs are exponentially distributed)
and σ ≈ the mean — "the standard deviation is fairly close to the
expected mean workload".

No simulation runs here: the table measures the *initial* assignment.
"""

from __future__ import annotations

import numpy as np

from repro.config import SimulationConfig
from repro.experiments.spec import ExperimentResult, resolve_scale, trials_for
from repro.metrics.balance import load_stats
from repro.sim.engine import TickEngine
from repro.util.rng import make_rng, spawn_seeds

__all__ = ["run", "PAPER_TABLE1", "GRID"]

#: (nodes, tasks) grid exactly as printed in the paper
GRID: list[tuple[int, int]] = [
    (1000, 100_000),
    (1000, 500_000),
    (1000, 1_000_000),
    (5000, 100_000),
    (5000, 500_000),
    (5000, 1_000_000),
    (10000, 100_000),
    (10000, 500_000),
    (10000, 1_000_000),
]

#: the paper's reported (median, sigma) per grid row
PAPER_TABLE1: dict[tuple[int, int], tuple[float, float]] = {
    (1000, 100_000): (69.410, 137.27),
    (1000, 500_000): (346.570, 499.169),
    (1000, 1_000_000): (692.300, 996.982),
    (5000, 100_000): (13.810, 20.477),
    (5000, 500_000): (69.280, 100.344),
    (5000, 1_000_000): (138.360, 200.564),
    (10000, 100_000): (7.000, 10.492),
    (10000, 500_000): (34.550, 50.366),
    (10000, 1_000_000): (69.180, 100.319),
}


def measure_initial_distribution(
    n_nodes: int, n_tasks: int, n_trials: int, seed: int
) -> tuple[float, float]:
    """Mean-over-trials of (median workload, σ) for a fresh assignment."""
    medians = np.empty(n_trials)
    sigmas = np.empty(n_trials)
    for i, child in enumerate(spawn_seeds(seed, n_trials)):
        engine = TickEngine(
            SimulationConfig(n_nodes=n_nodes, n_tasks=n_tasks),
            rng=make_rng(child),
        )
        stats = load_stats(engine.network_loads())
        medians[i] = stats.median
        sigmas[i] = stats.std
    return float(medians.mean()), float(sigmas.mean())


def run(scale: str | None = None, seed: int = 0, n_jobs: int = 1) -> ExperimentResult:
    """Reproduce Table I at the requested scale."""
    scale = resolve_scale(scale)
    n_trials = trials_for(scale, quick=5, full=100)
    rows = []
    for n_nodes, n_tasks in GRID:
        median, sigma = measure_initial_distribution(
            n_nodes, n_tasks, n_trials, seed
        )
        paper_med, paper_sig = PAPER_TABLE1[(n_nodes, n_tasks)]
        rows.append(
            [n_nodes, n_tasks, median, sigma, paper_med, paper_sig]
        )
    return ExperimentResult(
        experiment_id="table1",
        title=(
            "Median distribution of tasks among nodes "
            f"(avg of {n_trials} trials)"
        ),
        headers=[
            "Nodes",
            "Tasks",
            "Median Workload",
            "sigma",
            "paper: Median",
            "paper: sigma",
        ],
        rows=rows,
        paper_expected={str(k): v for k, v in PAPER_TABLE1.items()},
        notes=(
            "Expected theory: median = ln(2) * tasks/nodes, sigma = "
            "tasks/nodes (exponential responsibility arcs)."
        ),
        scale=scale,
    )
