"""Figures 2 and 3 — unit-circle visualizations of a tiny Chord ring.

Figure 2: 10 SHA-1-placed nodes (red circles) and 100 tasks (blue
pluses) on the perimeter of the unit circle, mapped via
``x = sin(2π·id/2¹⁶⁰)``, ``y = cos(2π·id/2¹⁶⁰)``.  Nodes cluster and some
arcs are long — the visual argument for why hashing alone does not
balance.

Figure 3: the same 100 tasks but the 10 nodes perfectly evenly spaced;
the tasks still cluster, so even ideal node placement leaves imbalance.

We regenerate both layouts with true SHA-1 identifiers in the 160-bit
space and report per-node task counts; ``repro.viz.ringplot`` renders the
actual figures as SVG.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.spec import ExperimentResult, resolve_scale
from repro.hashspace.hashing import sha1_ids
from repro.hashspace.idspace import SPACE_160
from repro.hashspace.projection import project_many
from repro.sim.arcops import responsible_slots
from repro.util.rng import make_rng

__all__ = ["run", "build_layout", "RingLayout"]


class RingLayout:
    """Node/task positions and the ownership mapping for one ring figure."""

    def __init__(self, node_ids: list[int], task_ids: list[int]):
        self.node_ids = sorted(node_ids)
        self.task_ids = list(task_ids)
        self.node_xy = project_many(self.node_ids, SPACE_160)
        self.task_xy = project_many(self.task_ids, SPACE_160)
        self.task_counts = self._count()

    def _count(self) -> np.ndarray:
        # Project the 160-bit ids into the 64-bit simulator space (an
        # order-preserving truncation) to reuse the vectorized
        # responsibility lookup; node_ids are already sorted.
        shift = SPACE_160.bits - 64
        nodes64 = np.array(
            [nid >> shift for nid in self.node_ids], dtype=np.uint64
        )
        tasks64 = np.array(
            [tid >> shift for tid in self.task_ids], dtype=np.uint64
        )
        if np.unique(nodes64).size != nodes64.size:  # pragma: no cover
            raise ValueError("node ids collide after projection")
        slots = responsible_slots(nodes64, tasks64)
        return np.bincount(slots, minlength=len(self.node_ids))


def build_layout(
    n_nodes: int = 10,
    n_tasks: int = 100,
    *,
    even_nodes: bool = False,
    seed: int = 0,
) -> RingLayout:
    """Build the Figure 2 (hashed) or Figure 3 (even) layout."""
    rng = make_rng(seed)
    if even_nodes:
        node_ids = SPACE_160.evenly_spaced(n_nodes)
    else:
        node_ids = _unique_sha1(n_nodes, rng)
    task_ids = sha1_ids(n_tasks, SPACE_160, rng)
    return RingLayout(node_ids, task_ids)


def _unique_sha1(count: int, rng) -> list[int]:
    ids: list[int] = []
    seen: set[int] = set()
    while len(ids) < count:
        for ident in sha1_ids(count - len(ids), SPACE_160, rng):
            if ident not in seen:
                seen.add(ident)
                ids.append(ident)
    return ids


def run(scale: str | None = None, seed: int = 0, n_jobs: int = 1) -> ExperimentResult:
    scale = resolve_scale(scale)
    hashed = build_layout(10, 100, even_nodes=False, seed=seed)
    even = build_layout(10, 100, even_nodes=True, seed=seed)

    rows = []
    for label, layout in (("fig2 hashed", hashed), ("fig3 even", even)):
        counts = layout.task_counts
        rows.append(
            [
                label,
                int(counts.min()),
                float(np.median(counts)),
                int(counts.max()),
                float(counts.std()),
            ]
        )
    return ExperimentResult(
        experiment_id="fig02_03",
        title="Ring visualizations: hashed vs evenly spaced nodes (10n/100t)",
        headers=["layout", "min tasks", "median", "max tasks", "std"],
        rows=rows,
        data={"hashed": hashed, "even": even},
        notes=(
            "Paper expectation: hashed nodes cluster (higher max/std); "
            "even spacing helps but tasks still cluster (max stays well "
            "above 10). Render with repro.viz.ringplot.render_ring_svg."
        ),
        scale=scale,
    )
