"""Figures 4–6 — workload histograms: churn 0.01 vs no strategy.

Two networks, identical start (1000 nodes / 100,000 tasks, homogeneous,
one task per tick):

* Figure 4 (tick 0): distributions are identical (same initial config).
* Figure 5 (tick 5): the churning network already has fewer low-load
  nodes and more higher-load nodes.
* Figure 6 (tick 35): the effect is pronounced — many baseline nodes
  idle, significantly fewer in the churning network.
"""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.experiments.figures import comparison_figure
from repro.experiments.spec import ExperimentResult, resolve_scale

__all__ = ["run"]


def run(scale: str | None = None, seed: int = 0, n_jobs: int = 1) -> ExperimentResult:
    scale = resolve_scale(scale)
    base = SimulationConfig(
        strategy="none", n_nodes=1000, n_tasks=100_000, seed=seed
    )
    churn = base.with_updates(strategy="churn", churn_rate=0.01)
    result = comparison_figure(
        "fig04_06",
        "Workload distribution, churn 0.01 vs no strategy (1000n/1e5t)",
        churn,
        base,
        "churn 0.01",
        "no strategy",
        focus_ticks=(0, 5, 35),
        notes=(
            "Fig 4 = tick 0 (identical), Fig 5 = tick 5, Fig 6 = tick 35. "
            "Expected: churn network shows lower idle fraction and lower "
            "gini at ticks 5/35."
        ),
        scale=scale,
    )
    return result
