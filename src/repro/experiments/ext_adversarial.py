"""Extension experiment: does benevolent balancing survive hostile Sybils?

The paper's Sybils are *benevolent* — extra identities volunteered to
absorb load.  This extension turns the same mechanism against the
network: a sensitivity grid of attack behavior x defense knob x
strategy, answering the question the paper cannot (its §II threat
discussion stops at "the Sybil attack is usually a problem").

Grid axes
---------
* **attack**: ``none`` (control), ``eclipse`` (coordinated identities
  concentrated in the heaviest victim arc), ``free_rider`` (joiners
  that accept keys and consume nothing), ``churn_amp`` (targeted crash
  pressure on the heaviest honest owner);
* **defense**: ``none``, ``join_cost`` (SybilControl-style identity
  budget), ``detection`` (per-arc density eviction), ``both``;
* **strategy**: the four paper strategies (churn, random injection,
  neighbor injection, invitation).

Every cell of one (strategy) block shares a seed (common random
numbers), so the *inflation* column — the cell's completed-work factor
over the matching no-attack/same-defense control — isolates the
attack's effect rather than trial noise.  Free-rider cells are expected
to hit ``max_ticks`` (stranded tasks never finish until churn joins
recapture them); their inflation is a lower bound and the ``stranded``
column shows what the attacker held at the end.

Expected shape: eclipse capture collapses under ``detection`` (its
density signature is exactly what the defense folds the ring to find);
free-riders are invisible to detection (one slot each) but slowed by
``join_cost``; churn amplification is mitigated by none of the identity
defenses — replication, not admission control, is the answer there.
"""

from __future__ import annotations

from hashlib import sha256

from repro.config import AdversaryModel, SimulationConfig
from repro.experiments.spec import ExperimentResult, resolve_scale, trials_for
from repro.sim.trials import run_trials

__all__ = ["run", "STRATEGIES", "ATTACKS", "DEFENSES"]

STRATEGIES = ("churn", "random_injection", "neighbor_injection", "invitation")
ATTACKS = ("none", "eclipse", "free_rider", "churn_amp")
DEFENSES = ("none", "join_cost", "detection", "both")

#: Background leave/join rate: gives the ring a rejoin path (stranded
#: keys are only recaptured when an honest identity splits the hostile
#: arc) and gives the churn-amplifier a realistic baseline to amplify.
CHURN_RATE = 0.02

#: Attack knobs (attack_tick=5 lands after the first decision round).
ECLIPSE_SYBILS = 12
ECLIPSE_ARC = 0.01
FREE_RIDERS = 4
CHURN_AMPLIFICATION = 0.1
ATTACK_TICK = 5

#: Defense knobs.
JOIN_COST = 3
DETECTION_INTERVAL = 10
DENSITY_THRESHOLD = 4


def _adversary(attack: str, defense: str) -> AdversaryModel:
    """The grid cell's AdversaryModel (attack knobs + defense knobs)."""
    kwargs: dict = {}
    if attack == "eclipse":
        kwargs.update(
            eclipse_sybils=ECLIPSE_SYBILS,
            eclipse_arc_fraction=ECLIPSE_ARC,
            attack_tick=ATTACK_TICK,
        )
    elif attack == "free_rider":
        kwargs.update(free_riders=FREE_RIDERS, attack_tick=ATTACK_TICK)
    elif attack == "churn_amp":
        kwargs.update(churn_amplification=CHURN_AMPLIFICATION)
    if defense in ("join_cost", "both"):
        kwargs.update(join_cost=JOIN_COST)
    if defense in ("detection", "both"):
        kwargs.update(
            detection_interval=DETECTION_INTERVAL,
            density_threshold=DENSITY_THRESHOLD,
        )
    return AdversaryModel(**kwargs)


def _row_seed(seed: int, strategy: str) -> int:
    """One seed per strategy block, shared across every attack x defense
    cell — common random numbers make the inflation ratios meaningful."""
    payload = f"{seed}|ext_adversarial|{strategy}".encode()
    return int.from_bytes(sha256(payload).digest()[:8], "little") >> 1


def _mean(values: list[float]) -> float | None:
    return sum(values) / len(values) if values else None


def run(scale: str | None = None, seed: int = 0, n_jobs: int = 1) -> ExperimentResult:
    scale = resolve_scale(scale)
    n_trials = trials_for(scale, quick=1, full=25)
    size = (400, 20_000) if scale == "full" else (80, 4_000)
    # stranded free-rider runs never finish on their own; a modest cap
    # bounds the grid's cost and the cwf column flags the truncation
    max_ticks = 2_000 if scale == "full" else 400
    rows = []
    measured: dict[tuple[str, str, str], dict] = {}
    for strategy in STRATEGIES:
        row_seed = _row_seed(seed, strategy)
        baselines: dict[str, float] = {}
        for attack in ATTACKS:
            for defense in DEFENSES:
                config = SimulationConfig(
                    strategy=strategy,
                    n_nodes=size[0],
                    n_tasks=size[1],
                    churn_rate=CHURN_RATE,
                    max_ticks=max_ticks,
                    seed=row_seed,
                    adversary=_adversary(attack, defense),
                )
                trial_set = run_trials(config, n_trials, n_jobs=n_jobs)
                cwf = trial_set.mean_completed_work_factor
                if attack == "none":
                    baselines[defense] = cwf
                inflation = cwf / baselines[defense]
                advs = [
                    r.adversary
                    for r in trial_set.results
                    if r.adversary is not None
                ]
                captured = _mean(
                    [a["captured_fraction_peak"] for a in advs]
                )
                stranded = _mean([float(a["stranded_tasks"]) for a in advs])
                precision = _mean(
                    [
                        a["detection_precision"]
                        for a in advs
                        if a["detection_precision"] is not None
                    ]
                )
                recall = _mean(
                    [
                        a["detection_recall"]
                        for a in advs
                        if a["detection_recall"] is not None
                    ]
                )
                cell = {
                    "cwf": cwf,
                    "inflation": inflation,
                    "captured_fraction_peak": captured,
                    "stranded_tasks": stranded,
                    "detection_precision": precision,
                    "detection_recall": recall,
                }
                measured[(strategy, attack, defense)] = cell
                rows.append(
                    [
                        strategy,
                        attack,
                        defense,
                        cwf,
                        inflation,
                        captured,
                        stranded,
                        precision,
                        recall,
                    ]
                )
    return ExperimentResult(
        experiment_id="ext_adversarial",
        title=(
            "Hostile-Sybil sensitivity grid "
            f"({size[0]}n/{size[1]}t, churn {CHURN_RATE:g}, "
            f"avg of {n_trials} trials)"
        ),
        headers=[
            "strategy",
            "attack",
            "defense",
            "cwf",
            "inflation",
            "captured%",
            "stranded",
            "det_prec",
            "det_rec",
        ],
        rows=rows,
        data={
            "measured": measured,
            "size": size,
            "churn_rate": CHURN_RATE,
            "max_ticks": max_ticks,
        },
        notes=(
            "cwf = completed-work runtime factor; inflation = cwf over the "
            "no-attack control with the same defense (common random "
            "numbers per strategy block); captured% = peak fraction of "
            "remaining keys on adversarial slots; stranded = tasks still "
            "held by the attacker at the end (free-riding losses); "
            "det_prec/det_rec = density-detection precision/recall over "
            "evicted owners (blank when detection is off). Free-rider "
            "cells truncate at max_ticks by design."
        ),
        scale=scale,
    )
