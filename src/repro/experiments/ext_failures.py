"""Extension experiment: strategy degradation under crash-stop churn.

Table II measures the Churn strategy under *polite* churn — every
leaving node hands its queue to its successor before going.  This
extension replays that grid with the failure model turned on: a
fraction of departures are crash-stops (no handoff), and tasks survive
only if one of the node's ``replication_factor`` live successors holds
a backup.

The honest metric here is the *completed-work* factor
(:attr:`repro.sim.results.SimulationResult.completed_work_factor`):
plain runtime factors flatter a lossy network because destroyed tasks
shrink the workload.  Each row fixes (strategy, replication) and sweeps
``crash_fraction`` with common random numbers (one seed per row), so
the degradation curves are monotone rather than noise-dominated.

Expected shape: with full replication the curves stay flat (every
crash recovers); with replication 0 the completed-work factor climbs
with the crash fraction as surviving nodes burn ticks on work that no
longer exists, and the lost fraction mirrors it.
"""

from __future__ import annotations

from hashlib import sha256

from repro.config import FailureModel, SimulationConfig
from repro.experiments.spec import ExperimentResult, resolve_scale, trials_for
from repro.sim.trials import run_trials

__all__ = ["run", "STRATEGIES", "CRASH_FRACTIONS", "REPLICATION_FACTORS"]

STRATEGIES = ("churn", "random_injection", "invitation")
CRASH_FRACTIONS = (0.0, 0.25, 0.5, 1.0)
#: None = perfect replication (every crash recovers), 0 = none at all.
REPLICATION_FACTORS = (None, 2, 0)

#: Leave/join rate driving the crash opportunities (Table II's top rate
#: is 0.01; we run hotter so quick-scale trials see enough crashes).
CHURN_RATE = 0.02


def _rep_label(rep: int | None) -> str:
    return "full" if rep is None else str(rep)


def _row_seed(seed: int, strategy: str, rep: int | None) -> int:
    """One seed per (strategy, replication) row, shared across the
    crash-fraction columns — common random numbers keep each row's
    degradation curve monotone instead of noise-dominated."""
    payload = f"{seed}|ext_failures|{strategy}|{rep}".encode()
    return int.from_bytes(sha256(payload).digest()[:8], "little") >> 1


def run(scale: str | None = None, seed: int = 0, n_jobs: int = 1) -> ExperimentResult:
    scale = resolve_scale(scale)
    n_trials = trials_for(scale, quick=3, full=50)
    size = (1000, 100_000) if scale == "full" else (200, 10_000)
    factor_cols = [f"cwf@cf={cf:g}" for cf in CRASH_FRACTIONS]
    lost_cols = [f"lost%@cf={cf:g}" for cf in CRASH_FRACTIONS]
    rows = []
    measured: dict[tuple[str, str], dict[float, float]] = {}
    lost: dict[tuple[str, str], dict[float, float]] = {}
    for strategy in STRATEGIES:
        for rep in REPLICATION_FACTORS:
            key = (strategy, _rep_label(rep))
            measured[key] = {}
            lost[key] = {}
            row: list = [strategy, _rep_label(rep)]
            lost_row: list = []
            row_seed = _row_seed(seed, strategy, rep)
            for cf in CRASH_FRACTIONS:
                config = SimulationConfig(
                    strategy=strategy,
                    n_nodes=size[0],
                    n_tasks=size[1],
                    churn_rate=CHURN_RATE,
                    seed=row_seed,
                    failures=FailureModel(
                        crash_fraction=cf, replication_factor=rep
                    ),
                )
                trial_set = run_trials(config, n_trials, n_jobs=n_jobs)
                factor = trial_set.mean_completed_work_factor
                lost_frac = 100.0 * float(
                    sum(1.0 - r.completed_fraction for r in trial_set.results)
                    / trial_set.n_trials
                )
                measured[key][cf] = factor
                lost[key][cf] = lost_frac
                row.append(factor)
                lost_row.append(lost_frac)
            rows.append(row + lost_row)
    return ExperimentResult(
        experiment_id="ext_failures",
        title=(
            "Completed-work factor under crash-stop churn "
            f"({size[0]}n/{size[1]}t, churn {CHURN_RATE:g}, "
            f"avg of {n_trials} trials)"
        ),
        headers=["strategy", "replication", *factor_cols, *lost_cols],
        rows=rows,
        data={
            "measured": measured,
            "lost_pct": lost,
            "size": size,
            "churn_rate": CHURN_RATE,
        },
        notes=(
            "cwf = completed-work runtime factor (ideal normalized to "
            "surviving work); lost% = share of submitted tasks destroyed. "
            "Expected: flat rows at full replication, monotone degradation "
            "as crash_fraction rises and replication falls."
        ),
        scale=scale,
    )
