"""Figures 7–9 — random injection vs no strategy and vs churn.

1000 nodes / 100,000 tasks, homogeneous, one task per tick:

* Figure 7 (tick 5): after a *single* load-balancing operation the
  random-injection network already has significantly fewer under-utilized
  nodes — better than the initial distribution.
* Figure 8 (tick 35): seven operations in, far fewer idle nodes and many
  more nodes with moderate work.
* Figure 9 (tick 35): random injection load-balances significantly
  better than churn 0.01.
"""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.experiments.figures import comparison_figure
from repro.experiments.spec import ExperimentResult, resolve_scale

__all__ = ["run"]


def run(scale: str | None = None, seed: int = 0, n_jobs: int = 1) -> ExperimentResult:
    scale = resolve_scale(scale)
    base = SimulationConfig(
        strategy="none", n_nodes=1000, n_tasks=100_000, seed=seed
    )
    random_inj = base.with_updates(strategy="random_injection")
    churn = base.with_updates(strategy="churn", churn_rate=0.01)

    vs_none = comparison_figure(
        "fig07_08",
        "Random injection vs no strategy (1000n/1e5t)",
        random_inj,
        base,
        "random injection",
        "no strategy",
        focus_ticks=(5, 35),
        scale=scale,
    )
    vs_churn = comparison_figure(
        "fig09",
        "Random injection vs churn 0.01 at tick 35 (1000n/1e5t)",
        random_inj,
        churn,
        "random injection",
        "churn 0.01",
        focus_ticks=(35,),
        scale=scale,
    )
    rows = vs_none.rows + vs_churn.rows
    return ExperimentResult(
        experiment_id="fig07_09",
        title="Figures 7-9: random injection comparisons (1000n/1e5t)",
        headers=vs_none.headers,
        rows=rows,
        data={"fig07_08": vs_none, "fig09": vs_churn},
        notes=(
            "Expected: at ticks 5 and 35 random injection has the lowest "
            "idle fraction of all three networks and beats churn at 35."
        ),
        scale=scale,
    )
