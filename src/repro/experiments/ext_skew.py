"""Extension experiment: strategies under skewed key distributions.

The paper's workload hashes every task key uniformly.  This extension
stresses the strategies with clustered and Zipf-weighted hot-spot keys
(see :mod:`repro.sim.keydist`): the baseline runtime factor explodes
(one region holds most of the work), and the interesting question is
which *local* strategy still finds it.

Expected shape: random injection degrades gracefully (its probes are
global); neighbor injection suffers most (hot spots may be far from any
under-utilized node's successor list); invitation sits between (the hot
nodes call for help, but only their immediate predecessors answer).
"""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.experiments.spec import ExperimentResult, resolve_scale, trials_for
from repro.sim.trials import run_trials

__all__ = ["run", "STRATEGIES", "DISTRIBUTIONS"]

STRATEGIES = (
    "none",
    "random_injection",
    "neighbor_injection",
    "invitation",
)
DISTRIBUTIONS = ("uniform", "clustered", "zipf")


def run(scale: str | None = None, seed: int = 0, n_jobs: int = 1) -> ExperimentResult:
    scale = resolve_scale(scale)
    n_trials = trials_for(scale, quick=3, full=50)
    size = (1000, 100_000) if scale == "full" else (300, 30_000)
    rows = []
    measured: dict[tuple[str, str], float] = {}
    for dist in DISTRIBUTIONS:
        row: list = [dist]
        for strategy in STRATEGIES:
            config = SimulationConfig(
                strategy=strategy,
                n_nodes=size[0],
                n_tasks=size[1],
                key_distribution=dist,
                seed=seed,
            )
            factor = run_trials(config, n_trials, n_jobs=n_jobs).mean_factor
            measured[(dist, strategy)] = factor
            row.append(factor)
        rows.append(row)
    return ExperimentResult(
        experiment_id="ext_skew",
        title=(
            f"Strategies under skewed keys ({size[0]}n/{size[1]}t, "
            f"avg of {n_trials} trials)"
        ),
        headers=["distribution", *STRATEGIES],
        rows=rows,
        data={"measured": measured, "size": size},
        notes=(
            "Expected: skew multiplies the baseline factor; random "
            "injection remains the most robust rescuer because its probes "
            "are global rather than neighbourhood-limited."
        ),
        scale=scale,
    )
