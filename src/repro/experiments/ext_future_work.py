"""Extension experiment: the paper's §VII future work, evaluated.

The conclusion names two avenues; both are implemented in
:mod:`repro.core.extensions` and measured here against the paper's own
strategies in the setting where the paper found its strategies weakest —
heterogeneous networks with strength-based consumption ("the workload is
balanced ... but the efficiency is not improved"):

* strength-aware helper choice for Invitation,
* strength-proportional volunteering for Random Injection,
* ID relocation (nodes choose their own IDs) instead of Sybils.
"""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.experiments.spec import ExperimentResult, resolve_scale, trials_for
from repro.sim.trials import run_trials

__all__ = ["run", "PAIRS"]

#: (paper strategy, future-work counterpart)
PAIRS = (
    ("invitation", "strength_invitation"),
    ("random_injection", "proportional_injection"),
    ("random_injection", "relocation"),
)


def run(scale: str | None = None, seed: int = 0, n_jobs: int = 1) -> ExperimentResult:
    scale = resolve_scale(scale)
    n_trials = trials_for(scale, quick=3, full=50)
    size = (1000, 100_000) if scale == "full" else (300, 30_000)

    def factor(strategy: str, **overrides) -> float:
        config = SimulationConfig(
            strategy=strategy,
            n_nodes=size[0],
            n_tasks=size[1],
            seed=seed,
            **overrides,
        )
        return run_trials(config, n_trials, n_jobs=n_jobs).mean_factor

    hetero = dict(heterogeneous=True, work_measurement="strength")
    rows = []
    measured: dict[str, float] = {}
    for baseline_name, extension_name in PAIRS:
        base_h = factor(baseline_name, **hetero)
        ext_h = factor(extension_name, **hetero)
        base_o = factor(baseline_name)
        ext_o = factor(extension_name)
        measured[f"{baseline_name}|hetero"] = base_h
        measured[f"{extension_name}|hetero"] = ext_h
        measured[f"{baseline_name}|homog"] = base_o
        measured[f"{extension_name}|homog"] = ext_o
        rows.append(
            [baseline_name, extension_name, base_h, ext_h, base_o, ext_o]
        )
    measured["none|hetero"] = factor("none", **hetero)
    measured["none|homog"] = factor("none")
    rows.append(["none", "-", measured["none|hetero"], "-",
                 measured["none|homog"], "-"])
    return ExperimentResult(
        experiment_id="ext_future_work",
        title=(
            f"§VII future-work strategies ({size[0]}n/{size[1]}t, "
            f"avg of {n_trials} trials)"
        ),
        headers=[
            "paper strategy",
            "future-work variant",
            "hetero: paper",
            "hetero: variant",
            "homog: paper",
            "homog: variant",
        ],
        rows=rows,
        data={"measured": measured, "size": size},
        notes=(
            "Measured finding (honest): strength awareness reduces trial "
            "variance but not the mean heterogeneous factor — the "
            "penalty the paper observed is structural, not a helper-"
            "selection artifact.  Relocation approaches random injection "
            "homogeneously with zero extra identities."
        ),
        scale=scale,
    )
