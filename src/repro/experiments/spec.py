"""Experiment result containers and scale presets.

Every reproduced table/figure is a function ``run(scale=..., seed=...,
n_jobs=...) -> ExperimentResult``.  Results carry both the rendered rows
(the same layout the paper prints) and the raw artifacts (histograms,
per-trial factors) for tests, plots and CSV export.

Scales
------
``quick``
    CI-sized: the same parameter grid but few trials (and, for the very
    largest cells, reduced sizes).  Benchmarks default to this.
``full``
    Paper-sized: 100 trials at the paper's node/task counts.  Select it
    with ``scale="full"`` or the environment variable ``REPRO_SCALE=full``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ExperimentError
from repro.util.tables import format_table

__all__ = ["ExperimentResult", "Scale", "resolve_scale", "trials_for"]

Scale = str
_SCALES = ("quick", "full")


def resolve_scale(scale: Scale | None) -> Scale:
    """Normalize the scale argument, honouring ``REPRO_SCALE``."""
    if scale is None:
        scale = os.environ.get("REPRO_SCALE", "quick")
    if scale not in _SCALES:
        raise ExperimentError(
            f"unknown scale {scale!r}; expected one of {_SCALES}"
        )
    return scale


def trials_for(scale: Scale, quick: int = 5, full: int = 100) -> int:
    """Trial count for a scale (the paper averages 100 trials)."""
    return full if resolve_scale(scale) == "full" else quick


@dataclass
class ExperimentResult:
    """One reproduced table or figure.

    Attributes
    ----------
    experiment_id:
        Stable id, e.g. ``"table2"`` or ``"fig08"``.
    title:
        Human description (mirrors the paper's caption).
    headers / rows:
        The tabular payload, printed in the paper's layout.
    paper_expected:
        The values the paper reports, keyed like our rows, for
        side-by-side comparison in EXPERIMENTS.md.
    data:
        Raw artifacts (histogram objects, factor arrays, layouts).
    notes:
        Reading guidance / deviations.
    meta:
        Execution metadata attached by the registry/runner — trial
        accounting (run/cached/failed/retried counts, seconds per
        trial) and wall-clock; feeds the run manifest.
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[Any]]
    paper_expected: dict[str, Any] = field(default_factory=dict)
    data: dict[str, Any] = field(default_factory=dict)
    notes: str = ""
    scale: str = "quick"
    meta: dict[str, Any] = field(default_factory=dict)

    def render(self, digits: int = 3) -> str:
        out = format_table(
            self.headers,
            self.rows,
            digits=digits,
            title=f"[{self.experiment_id}] {self.title} (scale={self.scale})",
        )
        if self.notes:
            out += "\n" + self.notes
        return out

    def row_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.headers, row)) for row in self.rows]


RunFn = Callable[..., ExperimentResult]
