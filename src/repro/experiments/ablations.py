"""Ablations over the secondary experimental variables (§VI-B-1, §VI-C).

======  ================================================================
A       sybilThreshold: 0 vs 25%-of-fair-share, homogeneous vs
        heterogeneous (paper: ≥0.1 factor reduction in the homogeneous
        1000n/1e5t network, no effect in heterogeneous ones, no effect
        at 1000 tasks/node)
B       maxSybils 5 vs 10 (paper: no effect homogeneous; hetero nets
        with wider strength ranges fare *worse*, +0.3..1 factor)
C       numSuccessors 5 vs 10 for neighbor injection (paper: ≈0.3
        improvement)
D       Sybil placement inside a target range: random vs midpoint vs
        median-split (our extension; the paper fixes placement=random)
E       churn layered under random injection (paper: no positive
        impact; ≈+0.06 at churn 0.01)
F       avoid_failed_ranges for neighbor injection (the paper's
        suggested "mark that range as invalid" refinement)
======  ================================================================
"""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.experiments.spec import ExperimentResult, resolve_scale, trials_for
from repro.sim.trials import run_trials

__all__ = ["run", "ABLATIONS", "run_one"]


def _mean(config: SimulationConfig, n_trials: int, n_jobs: int) -> float:
    return run_trials(config, n_trials, n_jobs=n_jobs).mean_factor


def _ablation_a(n_trials: int, seed: int, n_jobs: int) -> list[list]:
    base = SimulationConfig(
        strategy="random_injection", n_nodes=1000, n_tasks=100_000, seed=seed
    )
    fair = base.n_tasks // base.n_nodes
    rows = []
    for hetero in (False, True):
        for threshold in (0, fair // 4):
            cfg = base.with_updates(
                heterogeneous=hetero, sybil_threshold=threshold
            )
            rows.append(
                [
                    "A",
                    f"sybilThreshold={threshold} "
                    f"({'hetero' if hetero else 'homog'})",
                    _mean(cfg, n_trials, n_jobs),
                    "threshold>0 helps homog (>=0.1), no effect hetero",
                ]
            )
    return rows


def _ablation_b(n_trials: int, seed: int, n_jobs: int) -> list[list]:
    rows = []
    for hetero in (False, True):
        for max_sybils in (5, 10):
            cfg = SimulationConfig(
                strategy="random_injection",
                n_nodes=1000,
                n_tasks=100_000,
                heterogeneous=hetero,
                work_measurement="strength" if hetero else "one",
                max_sybils=max_sybils,
                seed=seed,
            )
            rows.append(
                [
                    "B",
                    f"maxSybils={max_sybils} "
                    f"({'hetero+strength' if hetero else 'homog'})",
                    _mean(cfg, n_trials, n_jobs),
                    "wider strength range hurts hetero (+0.3..1)",
                ]
            )
    return rows


def _ablation_c(n_trials: int, seed: int, n_jobs: int) -> list[list]:
    rows = []
    for succ in (5, 10):
        cfg = SimulationConfig(
            strategy="neighbor_injection",
            n_nodes=1000,
            n_tasks=100_000,
            num_successors=succ,
            seed=seed,
        )
        rows.append(
            [
                "C",
                f"numSuccessors={succ} (neighbor)",
                _mean(cfg, n_trials, n_jobs),
                "10 beats 5 by ~0.3 (paper)",
            ]
        )
    return rows


def _ablation_d(n_trials: int, seed: int, n_jobs: int) -> list[list]:
    rows = []
    for placement in ("random", "midpoint", "median"):
        cfg = SimulationConfig(
            strategy="smart_neighbor_injection",
            n_nodes=1000,
            n_tasks=100_000,
            placement=placement,
            seed=seed,
        )
        rows.append(
            [
                "D",
                f"placement={placement} (smart neighbor)",
                _mean(cfg, n_trials, n_jobs),
                "median-split should transfer the most work",
            ]
        )
    return rows


def _ablation_e(n_trials: int, seed: int, n_jobs: int) -> list[list]:
    rows = []
    for churn in (0.0, 0.01):
        cfg = SimulationConfig(
            strategy="random_injection",
            n_nodes=1000,
            n_tasks=100_000,
            churn_rate=churn,
            seed=seed,
        )
        rows.append(
            [
                "E",
                f"random injection + churn={churn}",
                _mean(cfg, n_trials, n_jobs),
                "churn adds ~+0.06 at 0.01 (paper: no positive impact)",
            ]
        )
    return rows


def _ablation_f(n_trials: int, seed: int, n_jobs: int) -> list[list]:
    rows = []
    for avoid in (False, True):
        cfg = SimulationConfig(
            strategy="neighbor_injection",
            n_nodes=1000,
            n_tasks=100_000,
            avoid_failed_ranges=avoid,
            seed=seed,
        )
        rows.append(
            [
                "F",
                f"avoid_failed_ranges={avoid} (neighbor)",
                _mean(cfg, n_trials, n_jobs),
                "paper suggests marking dead ranges 'may be advisable'",
            ]
        )
    return rows


ABLATIONS = {
    "A": _ablation_a,
    "B": _ablation_b,
    "C": _ablation_c,
    "D": _ablation_d,
    "E": _ablation_e,
    "F": _ablation_f,
}


def run_one(
    which: str, scale: str | None = None, seed: int = 0, n_jobs: int = 1
) -> ExperimentResult:
    """Run a single ablation (A–F)."""
    scale = resolve_scale(scale)
    n_trials = trials_for(scale, quick=3, full=50)
    rows = ABLATIONS[which](n_trials, seed, n_jobs)
    return ExperimentResult(
        experiment_id=f"ablation_{which}",
        title=f"Ablation {which} (avg of {n_trials} trials)",
        headers=["ablation", "setting", "mean factor", "expectation"],
        rows=rows,
        scale=scale,
    )


def run(scale: str | None = None, seed: int = 0, n_jobs: int = 1) -> ExperimentResult:
    """Run all ablations A–F."""
    scale = resolve_scale(scale)
    n_trials = trials_for(scale, quick=3, full=50)
    rows: list[list] = []
    for which in sorted(ABLATIONS):
        rows.extend(ABLATIONS[which](n_trials, seed, n_jobs))
    return ExperimentResult(
        experiment_id="ablations",
        title=f"Ablations A-F (avg of {n_trials} trials)",
        headers=["ablation", "setting", "mean factor", "expectation"],
        rows=rows,
        scale=scale,
    )
