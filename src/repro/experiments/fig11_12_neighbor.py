"""Figures 11–12 — neighbor injection (estimated and smart) vs baseline.

1000 nodes / 100,000 tasks at tick 35:

* Figure 11: plain neighbor injection.  More idle nodes than random
  injection (work can only be acquired nearby), but the right tail
  shrinks — the paper reads ≈450 max tasks vs ≈650 with no strategy:
  "nodes ... have effectively shifted part of the histogram left".
* Figure 12: smart neighbor injection (workload queries instead of
  range estimates) keeps that right-tail reduction with notably fewer
  idling nodes.
"""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.experiments.figures import comparison_figure
from repro.experiments.spec import ExperimentResult, resolve_scale

__all__ = ["run"]


def run(scale: str | None = None, seed: int = 0, n_jobs: int = 1) -> ExperimentResult:
    scale = resolve_scale(scale)
    base = SimulationConfig(
        strategy="none", n_nodes=1000, n_tasks=100_000, seed=seed
    )
    neighbor = base.with_updates(strategy="neighbor_injection")
    smart = base.with_updates(strategy="smart_neighbor_injection")

    fig11 = comparison_figure(
        "fig11",
        "Neighbor injection vs no strategy at tick 35 (1000n/1e5t)",
        neighbor,
        base,
        "neighbor injection",
        "no strategy",
        focus_ticks=(35,),
        scale=scale,
    )
    fig12 = comparison_figure(
        "fig12",
        "Smart neighbor injection vs no strategy at tick 35 (1000n/1e5t)",
        smart,
        base,
        "smart neighbor injection",
        "no strategy",
        focus_ticks=(35,),
        scale=scale,
    )
    return ExperimentResult(
        experiment_id="fig11_12",
        title="Figures 11-12: neighbor injection variants at tick 35",
        headers=fig11.headers,
        rows=fig11.rows + fig12.rows,
        data={"fig11": fig11, "fig12": fig12},
        notes=(
            "Expected: both variants cut the max load (paper: ~450 vs "
            "~650); smart injection also cuts the idle fraction."
        ),
        scale=scale,
    )
