"""Runnable reproductions of every table and figure in the paper.

Each module exposes ``run(scale=None, seed=0, n_jobs=1)`` returning an
:class:`~repro.experiments.spec.ExperimentResult`; the registry maps
stable ids to those functions.  ``scale="quick"`` (default) runs a
CI-sized version; ``scale="full"`` (or ``REPRO_SCALE=full``) runs the
paper's 100-trial configuration.
"""

from repro.experiments.spec import ExperimentResult, resolve_scale, trials_for

__all__ = [
    "ExperimentResult",
    "resolve_scale",
    "trials_for",
    "EXPERIMENTS",
    "run_experiment",
    "experiment_ids",
]


def __getattr__(name: str):
    # Lazy re-export to avoid importing every experiment at package import.
    if name in ("EXPERIMENTS", "run_experiment", "experiment_ids"):
        from repro.experiments import registry

        return getattr(registry, name)
    raise AttributeError(name)
