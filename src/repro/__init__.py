"""repro — reproduction of "Autonomous Load Balancing in Distributed Hash
Tables Using Churn and the Sybil Attack" (Rosen, Levin, Bourgeois, 2021).

Quick start::

    from repro import SimulationConfig, run_trials

    baseline = SimulationConfig(strategy="none", n_nodes=200, n_tasks=20_000)
    sybil = baseline.with_updates(strategy="random_injection")
    print(run_trials(baseline, 10).mean_factor)   # ~5-6x ideal
    print(run_trials(sybil, 10).mean_factor)      # approaches 1x

Layers (bottom-up):

* :mod:`repro.hashspace` — circular id spaces, SHA-1 keys, arcs, projection
* :mod:`repro.chord` — protocol-level Chord (fingers, stabilize, replicas)
* :mod:`repro.sim` — the vectorized tick simulator used for all experiments
* :mod:`repro.core` — the paper's load-balancing strategies
* :mod:`repro.metrics` — balance statistics, histograms, runtime factors
* :mod:`repro.experiments` — each table/figure of the paper, runnable
* :mod:`repro.viz` — ASCII/SVG/CSV rendering of results
* :mod:`repro.apps` — ChordReduce-style MapReduce on the simulated DHT
"""

from repro.config import STRATEGY_NAMES, SimulationConfig
from repro.core import (
    InducedChurn,
    Invitation,
    NeighborInjection,
    NoStrategy,
    RandomInjection,
    SmartNeighborInjection,
    Strategy,
    make_strategy,
)
from repro.errors import ReproError, TrialError
from repro.hashspace import SPACE_64, SPACE_160, Arc, IdSpace
from repro.metrics import LoadStats, load_stats, runtime_factor
from repro.sim import (
    SimulationResult,
    TickEngine,
    TrialCache,
    TrialSet,
    run_simulation,
    run_trial,
    run_trials,
    sweep,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SimulationConfig",
    "STRATEGY_NAMES",
    "TickEngine",
    "run_simulation",
    "run_trial",
    "run_trials",
    "sweep",
    "SimulationResult",
    "TrialSet",
    "TrialCache",
    "TrialError",
    "Strategy",
    "make_strategy",
    "NoStrategy",
    "InducedChurn",
    "RandomInjection",
    "NeighborInjection",
    "SmartNeighborInjection",
    "Invitation",
    "IdSpace",
    "Arc",
    "SPACE_160",
    "SPACE_64",
    "LoadStats",
    "load_stats",
    "runtime_factor",
    "ReproError",
]
