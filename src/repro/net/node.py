"""A live asyncio Chord node hosting `repro.chord` logic on real sockets.

The protocol brain is the unmodified :class:`~repro.chord.node.ChordNode`
— the same class the in-memory tests drive.  What this module adds is a
body for it to live in:

* :class:`PeerDirectory` — the id → TCP address map.  Every request and
  response carries the sender's address snapshot, so the directory is
  gossip-maintained; removals are tombstoned so a peer's stale snapshot
  cannot resurrect a retired identity.
* :class:`RemoteNetwork` — a drop-in for the ``SimNetwork`` surface
  ``ChordNode`` uses (``rpc``/``rpc_retry``/``is_alive``/``register``/
  ``node_count``/``fallbacks``/``replication_factor``).  Local targets
  (the node's main identity and its Sybils share one process) dispatch
  as direct calls; remote targets go over :mod:`repro.net.transport`.
  ``rpc`` sends exactly once and ``rpc_retry`` owns the resend budget,
  so the drops/retries/messages accounting matches the in-memory fabric
  count for count.
* :class:`LiveBalancer` — the paper's strategy hooks driven from the
  stabilize loop: every ``decision_interval`` maintenance cycles the
  node compares its total load against ``sybil_threshold`` and spawns /
  retires Sybil identities (`none`, `random_injection`,
  `neighbor_injection`, `invitation`).
* :class:`LiveNode` — the asyncio shell: a TCP server for incoming
  frames, plus maintenance and gossip-heartbeat tasks with seeded
  jitter.  Blocking protocol work runs on a small thread pool so the
  event loop stays responsive; Chord's own stabilization absorbs the
  occasional interleaving between a served RPC and a maintenance cycle.

Determinism note: wall-clock time never feeds protocol *decisions* —
jitter and Sybil placement come from generators seeded by ``--seed``.
Wall-clock only appears in measurements (the stress layer's latency
numbers), which is exactly the live/tick split ROADMAP item 1 asks for.
"""

from __future__ import annotations

import asyncio
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro import sanitize
from repro.chord.node import ChordNode
from repro.errors import IdSpaceError, ProtocolError, TransientNetworkError
from repro.hashspace.hashing import sha1_id
from repro.hashspace.idspace import IdSpace
from repro.net.transport import (
    Address,
    RetryPolicy,
    decode_payload,
    encode_payload,
    read_frame,
    request,
    write_frame,
)
from repro.obs.metrics import MetricsRegistry
from repro.util.rng import make_rng, spawn_seeds

__all__ = [
    "LiveBalancer",
    "LiveNode",
    "LiveNodeConfig",
    "PeerDirectory",
    "RemoteNetwork",
    "STRATEGY_NAMES",
]

#: Strategy names the live balancer accepts (mirrors the sim registry).
STRATEGY_NAMES = ("none", "random_injection", "neighbor_injection", "invitation")

#: How many peers an invitation poll samples per decision round.
_POLL_SAMPLE = 16


class PeerDirectory:
    """Gossip-maintained map of ring identity → TCP address.

    Identities hosted by one process (a main node plus its Sybils) all
    map to the same address.  :meth:`remove` tombstones the id so that
    later gossip merges from peers with a stale view cannot re-add it —
    Sybil retirement would otherwise flap forever.

    Tombstones are bounded: each carries the logical operation count at
    which it was written, and on every mutation the set is pruned to
    ``max_tombstones`` entries no older than ``tombstone_ttl_ops``
    operations.  Unbounded growth would otherwise leak on long-lived
    nodes (every Sybil ever retired, forever); the bounds are generous
    enough that a stale gossip snapshot has long stopped circulating by
    the time its tombstone ages out.  Ages are counted in directory
    operations, not wall-clock, so behaviour stays deterministic.
    """

    def __init__(
        self,
        *,
        max_tombstones: int = 1024,
        tombstone_ttl_ops: int = 100_000,
    ) -> None:
        self._addrs: dict[int, Address] = {}
        #: id → logical op count at tombstoning time
        self._tombstones: dict[int, int] = {}
        self._ops = 0
        self.max_tombstones = max_tombstones
        self.tombstone_ttl_ops = tombstone_ttl_ops

    def _prune(self) -> None:
        """Enforce the age and size bounds (runs after every mutation)."""
        if not self._tombstones:
            return
        horizon = self._ops - self.tombstone_ttl_ops
        if horizon > 0:
            self._tombstones = {
                i: born
                for i, born in self._tombstones.items()
                if born > horizon
            }
        overflow = len(self._tombstones) - self.max_tombstones
        if overflow > 0:
            # evict the oldest; dict preserves insertion order and
            # stones are only ever appended, so the first entries are
            # the oldest
            for ident in list(self._tombstones)[:overflow]:
                del self._tombstones[ident]

    def add(self, node_id: int, addr: Address) -> None:
        self._ops += 1
        self._tombstones.pop(node_id, None)
        self._addrs[node_id] = (addr[0], int(addr[1]))
        self._prune()

    def remove(self, node_id: int) -> None:
        self._ops += 1
        if self._addrs.pop(node_id, None) is not None:
            self._tombstones[node_id] = self._ops
        self._prune()

    def get(self, node_id: int) -> Address:
        try:
            return self._addrs[node_id]
        except KeyError:
            err = ProtocolError(f"no address known for id {node_id}")
            err.transport_failure = True
            raise err from None

    def knows(self, node_id: int) -> bool:
        return node_id in self._addrs

    def ids(self) -> list[int]:
        return sorted(self._addrs)

    def __len__(self) -> int:
        return len(self._addrs)

    def snapshot(self) -> dict[int, list[Any]]:
        """JSON-ready ``{id: [host, port]}`` copy for gossip envelopes."""
        return {i: [a[0], a[1]] for i, a in self._addrs.items()}

    def merge(self, snapshot: dict[int, Any]) -> None:
        """Adopt a peer's snapshot (tombstoned ids stay dead)."""
        self._ops += 1
        for node_id, addr in snapshot.items():
            ident = int(node_id)
            if ident in self._tombstones:
                continue
            host, port = addr
            self._addrs.setdefault(ident, (str(host), int(port)))
        self._prune()


class RemoteNetwork:
    """The ``SimNetwork`` facade backed by TCP instead of a dict.

    Implements exactly the surface :class:`~repro.chord.node.ChordNode`
    touches.  The accounting contract is the in-memory one: every send
    is a message, every transit failure a drop, every ``rpc_retry``
    resend a retry, every holder re-resolution a fallback — so live
    ``fault_stats()`` are comparable with simulated ones.
    """

    def __init__(
        self,
        directory: PeerDirectory,
        local_addr: Address,
        *,
        policy: RetryPolicy | None = None,
        transient_retries: int = 2,
    ) -> None:
        self.directory = directory
        self.local_addr = local_addr
        # one attempt per rpc(): the resend budget lives in rpc_retry,
        # exactly where SimNetwork keeps it
        self._policy = (policy or RetryPolicy()).single_shot()
        self._local: dict[int, ChordNode] = {}
        self.messages: Counter[str] = Counter()
        self.transient_retries = transient_retries
        self.replication_factor: int | None = None
        self.drops = 0
        self.retries = 0
        self.fallbacks = 0

    # ------------------------------------------------------------------
    # membership (local identities only; remote ones arrive via gossip)
    # ------------------------------------------------------------------
    def register(self, node: ChordNode) -> None:
        if node.id in self._local and self._local[node.id].alive:
            raise ProtocolError(f"id {node.id} already hosted and alive")
        self._local[node.id] = node
        self.directory.add(node.id, self.local_addr)

    def deregister(self, node_id: int) -> None:
        self._local.pop(node_id, None)
        self.directory.remove(node_id)

    def node(self, node_id: int) -> ChordNode:
        try:
            return self._local[node_id]
        except KeyError:
            raise ProtocolError(f"id {node_id} is not hosted here") from None

    def local_ids(self) -> list[int]:
        return sorted(self._local)

    def local_nodes(self) -> list[ChordNode]:
        return [self._local[i] for i in self.local_ids()]

    def has_node(self, node_id: int) -> bool:
        return node_id in self._local

    def is_alive(self, node_id: int) -> bool:
        """Optimistic liveness: a directory entry counts as alive.

        The refutation path is the same as a deployed DHT's — an RPC to
        a dead peer times out (or its host disowns the id), the entry is
        dropped, and stabilization routes around it.
        """
        node = self._local.get(node_id)
        if node is not None:
            return node.alive
        return self.directory.knows(node_id)

    def alive_ids(self) -> list[int]:
        return sorted(i for i, n in self._local.items() if n.alive)

    def __len__(self) -> int:
        return len(self.alive_ids())

    def node_count(self) -> int:
        """Known ring size (drives lookup hop limits, as in SimNetwork)."""
        return max(len(self.directory), len(self._local))

    # ------------------------------------------------------------------
    # the wire
    # ------------------------------------------------------------------
    def dispatch(self, target_id: int, method: str, args: list, kwargs: dict) -> Any:
        """Serve an incoming RPC addressed to a locally hosted identity."""
        if not method.startswith("rpc_"):
            raise ProtocolError(f"method {method!r} is not remotely callable")
        node = self._local.get(target_id)
        if node is None or not node.alive:
            err = ProtocolError(f"rpc {method} to dead/unknown id {target_id}")
            err.transport_failure = True
            raise err
        return getattr(node, method)(*args, **kwargs)

    def rpc(self, target_id: int, method: str, *args: Any, **kwargs: Any) -> Any:
        """One send (local direct call or one TCP exchange).

        Transit failures (timeout, refused, reset) count a drop and
        raise :class:`TransientNetworkError`; a peer that answers "not
        hosting that id" raises the transport-flavoured
        :class:`ProtocolError` and evicts the stale directory entry.
        """
        self.messages[method] += 1
        node = self._local.get(target_id)
        if node is not None:
            if not node.alive:
                err = ProtocolError(f"rpc {method} to dead id {target_id}")
                err.transport_failure = True
                raise err
            return getattr(node, method)(*args, **kwargs)
        addr = self.directory.get(target_id)
        envelope = {
            "op": "rpc",
            "to": target_id,
            "method": method,
            "args": encode_payload(list(args)),
            "kwargs": encode_payload(kwargs),
            "addrs": encode_payload(self.directory.snapshot()),
        }
        try:
            value = request(addr, envelope, policy=self._policy)
        except TransientNetworkError:
            self.drops += 1
            raise
        except ProtocolError as exc:
            if getattr(exc, "transport_failure", False):
                # the host answered but disowned the id — stale entry
                self.directory.remove(target_id)
            raise
        self.directory.merge(value.get("addrs", {}))
        return value.get("r")

    def rpc_retry(
        self, target_id: int, method: str, *args: Any, **kwargs: Any
    ) -> Any:
        """Bounded transparent resends on transient failures only.

        Same accounting invariant as ``SimNetwork.rpc_retry``: each
        resend is a message and a retry; dead endpoints never retry.
        """
        attempts = self.transient_retries
        while True:
            try:
                return self.rpc(target_id, method, *args, **kwargs)
            except TransientNetworkError:
                if attempts <= 0:
                    raise
                attempts -= 1
                self.retries += 1

    # ------------------------------------------------------------------
    def total_messages(self) -> int:
        return sum(self.messages.values())

    def fault_stats(self) -> dict[str, int]:
        return {
            "drops": self.drops,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
        }


class LiveBalancer:
    """The paper's decision round, driven from the live stabilize loop.

    Each round the node sums primary load across its identities (main +
    Sybils) and applies the strategy:

    * any strategy: a node with Sybils but zero load retires them (they
      were not helping where they were);
    * ``random_injection``: at or below ``sybil_threshold`` with budget
      left → one Sybil at a seeded-random identifier;
    * ``neighbor_injection``: same trigger, but the Sybil lands inside
      the arc of the most loaded *successor* that is above threshold;
    * ``invitation``: same trigger, target chosen from a bounded poll of
      all known peers (the live stand-in for the paper's help adverts).

    At most one Sybil per round ("avoid overwhelming the network").
    """

    def __init__(
        self,
        live: "LiveNode",
        strategy: str,
        *,
        sybil_threshold: int = 0,
        max_sybils: int = 5,
        rng: Any = None,
    ) -> None:
        if strategy not in STRATEGY_NAMES:
            raise ProtocolError(
                f"unknown live strategy {strategy!r}; "
                f"expected one of {', '.join(STRATEGY_NAMES)}"
            )
        self.live = live
        self.strategy = strategy
        self.sybil_threshold = sybil_threshold
        self.max_sybils = max_sybils
        self.rng = rng if rng is not None else make_rng(None)

    # ------------------------------------------------------------------
    def decide(self) -> None:
        """One decision round (runs on the maintenance executor)."""
        if self.strategy == "none":
            return
        live = self.live
        load = sum(n.store.primary_count for n in live.identities())
        if load == 0 and live.sybils():
            self.retire_all()
        if load <= self.sybil_threshold and len(live.sybils()) < self.max_sybils:
            self.inject_one()

    def retire_all(self) -> None:
        for sybil in list(self.live.sybils()):
            sybil.leave()
            self.live.network.deregister(sybil.id)
            self.live.drop_sybil(sybil.id)
            self.live.metrics.inc("net.sybils_retired")

    def inject_one(self) -> None:
        target_id = self._pick_identifier()
        if target_id is None:
            return
        live = self.live
        sybil = ChordNode(
            target_id, live.space, live.network,
            n_successors=live.config.n_successors,
        )
        try:
            sybil.join(live.main.id)
        except ProtocolError:
            live.network.deregister(target_id)
            live.metrics.inc("net.sybil_join_failures")
            return
        live.adopt_sybil(sybil)
        live.metrics.inc("net.sybils_created")

    # ------------------------------------------------------------------
    def _pick_identifier(self) -> int | None:
        space = self.live.space
        if self.strategy == "random_injection":
            return self._free_random_id()
        target = self._pick_target()
        if target is None:
            return None  # nobody is overloaded: do not inject blindly
        try:
            pred = self.live.network.rpc_retry(target, "rpc_get_predecessor")
        except ProtocolError:
            return None
        if pred is None:
            return self._free_random_id()
        try:
            return space.random_in_interval(self.rng, int(pred), int(target))
        except IdSpaceError:
            return None  # arc too tight to split

    def _free_random_id(self) -> int | None:
        space, directory = self.live.space, self.live.network.directory
        for _ in range(8):
            candidate = space.random_id(self.rng)
            if not directory.knows(candidate):
                return candidate
        return None

    def _pick_target(self) -> int | None:
        """The most loaded overloaded peer among the polled candidates."""
        own = set(self.live.network.local_ids())
        if self.strategy == "neighbor_injection":
            candidates = [
                s for s in self.live.main.successor_list if s not in own
            ]
        else:  # invitation: bounded poll over everything gossip knows
            candidates = [
                i for i in self.live.network.directory.ids() if i not in own
            ][:_POLL_SAMPLE]
        best_id, best_load = None, self.sybil_threshold
        for peer in candidates:
            try:
                peer_load = int(
                    self.live.network.rpc_retry(peer, "rpc_report_load")
                )
            except ProtocolError:
                continue
            if peer_load > best_load:
                best_id, best_load = peer, peer_load
        return best_id


@dataclass
class LiveNodeConfig:
    """Everything a live node needs beyond its bind address."""

    seed: int = 0
    bits: int = 64
    n_successors: int = 5
    strategy: str = "none"
    sybil_threshold: int = 0
    max_sybils: int = 5
    #: maintenance cycles between balancer decision rounds (paper: 5)
    decision_interval: int = 5
    #: seconds between maintenance cycles (before seeded jitter)
    maintenance_interval: float = 0.2
    #: seconds between gossip heartbeats
    heartbeat_interval: float = 1.0
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    #: worker threads serving blocking protocol work
    workers: int = 8


class LiveNode:
    """One process on the live ring: TCP server + maintenance tasks.

    Lifecycle::

        node = LiveNode("127.0.0.1", 0, config)
        await node.start(bootstrap=None)      # create or join the ring
        ...
        await node.stop()                     # graceful leave + close

    ``port=0`` binds an ephemeral port; :attr:`addr` holds the real one
    after :meth:`start`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        config: LiveNodeConfig | None = None,
        *,
        node_id: int | None = None,
    ) -> None:
        self.config = config or LiveNodeConfig()
        self.space = IdSpace(self.config.bits)
        self.host = host
        self.port = port
        self._requested_id = node_id
        self.addr: Address = (host, port)
        self.directory = PeerDirectory()
        self.network: RemoteNetwork = None  # type: ignore[assignment]
        self.main: ChordNode = None  # type: ignore[assignment]
        self.balancer: LiveBalancer | None = None
        self.metrics = MetricsRegistry()
        self.cycles = 0
        self._sybils: dict[int, ChordNode] = {}
        self._server: asyncio.base_events.Server | None = None
        self._tasks: list[asyncio.Task] = []
        self._executor: ThreadPoolExecutor | None = None
        self._stopping = asyncio.Event()
        jitter_seed, sybil_seed = spawn_seeds(self.config.seed, 2)
        self._jitter_rng = make_rng(jitter_seed)
        self._sybil_rng = make_rng(sybil_seed)

    # ------------------------------------------------------------------
    # identities
    # ------------------------------------------------------------------
    def identities(self) -> list[ChordNode]:
        """Main node plus live Sybils (the process's total presence)."""
        return [self.main] + self.sybils()

    def sybils(self) -> list[ChordNode]:
        return [s for s in self._sybils.values() if s.alive]

    def adopt_sybil(self, sybil: ChordNode) -> None:
        self._sybils[sybil.id] = sybil

    def drop_sybil(self, sybil_id: int) -> None:
        self._sybils.pop(sybil_id, None)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, bootstrap: Address | None = None) -> None:
        """Bind, create/join the ring, and launch the background tasks."""
        loop = asyncio.get_running_loop()
        if sanitize.enabled():
            # Blocked-loop watch (dynamic R007) + per-consumer stream
            # claims: jitter and Sybil decisions each own a spawned
            # stream; a future consumer grabbing either would alias.
            sanitize.install_asyncio_watch(loop)
            sanitize.track_rng(self._jitter_rng, f"node-jitter-{self.port}")
            sanitize.track_rng(self._sybil_rng, f"node-sybil-{self.port}")
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-net"
        )
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.addr = (self.host, int(sockname[1]))
        self.network = RemoteNetwork(
            self.directory,
            self.addr,
            policy=self.config.policy,
            transient_retries=self.config.policy.retries,
        )
        node_id = self._requested_id
        if node_id is None:
            # stable identity per endpoint, exactly the paper's hash rule
            node_id = sha1_id(f"{self.addr[0]}:{self.addr[1]}", self.space)
        self.main = ChordNode(
            node_id, self.space, self.network,
            n_successors=self.config.n_successors,
        )
        if self.config.strategy != "none":
            self.balancer = LiveBalancer(
                self,
                self.config.strategy,
                sybil_threshold=self.config.sybil_threshold,
                max_sybils=self.config.max_sybils,
                rng=self._sybil_rng,
            )
        if bootstrap is None:
            self.main.create()
        else:
            await loop.run_in_executor(self._executor, self._join_via, bootstrap)
        self._tasks = [
            loop.create_task(self._maintenance_loop(), name="repro-maint"),
            loop.create_task(self._heartbeat_loop(), name="repro-gossip"),
        ]

    def _join_via(self, bootstrap: Address) -> None:
        """Blocking join handshake (runs on the executor)."""
        hello = request(
            bootstrap,
            {
                "op": "hello",
                "addrs": encode_payload(self.directory.snapshot()),
            },
            policy=self.config.policy,
        )
        self.directory.merge(hello.get("addrs", {}))
        self.main.join(int(hello["id"]))

    async def stop(self, *, leave: bool = True) -> None:
        """Cancel tasks, optionally leave gracefully, close everything."""
        self._stopping.set()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except Exception:  # reprolint: disable=R004 (shutdown boundary)
                pass
            except asyncio.CancelledError:
                pass
        self._tasks = []
        if leave and self.main is not None and self._executor is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(self._executor, self._leave_all)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def _leave_all(self) -> None:
        for node in list(self.sybils()) + [self.main]:
            try:
                node.leave()
            except ProtocolError:
                pass
            self.network.deregister(node.id)

    # ------------------------------------------------------------------
    # background tasks
    # ------------------------------------------------------------------
    def _jitter(self, interval: float) -> float:
        """Seeded ±25% jitter so rings do not stabilize in lockstep."""
        return interval * (0.75 + 0.5 * float(self._jitter_rng.random()))

    async def _maintenance_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._stopping.is_set():
            await loop.run_in_executor(self._executor, self._maintenance_once)
            self.cycles += 1
            if (
                self.balancer is not None
                and self.cycles % self.config.decision_interval == 0
            ):
                await loop.run_in_executor(
                    self._executor, self._decision_once
                )
            await asyncio.sleep(self._jitter(self.config.maintenance_interval))

    def _maintenance_once(self) -> None:
        for node in self.identities():
            try:
                node.maintenance_cycle()
            except ProtocolError:
                # a peer died mid-cycle; the next cycle repairs further
                self.metrics.inc("net.maintenance_errors")

    def _decision_once(self) -> None:
        try:
            assert self.balancer is not None
            self.balancer.decide()
        except ProtocolError:
            self.metrics.inc("net.decision_errors")

    async def _heartbeat_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._stopping.is_set():
            await asyncio.sleep(self._jitter(self.config.heartbeat_interval))
            await loop.run_in_executor(self._executor, self._heartbeat_once)

    def _heartbeat_once(self) -> None:
        """Gossip the address book to one seeded-random remote peer."""
        own = set(self.network.local_ids())
        peers = [i for i in self.directory.ids() if i not in own]
        if not peers:
            return
        peer = peers[int(self._jitter_rng.integers(0, len(peers)))]
        try:
            value = request(
                self.directory.get(peer),
                {
                    "op": "hello",
                    "addrs": encode_payload(self.directory.snapshot()),
                },
                policy=self.config.policy,
            )
        except ProtocolError:
            self.directory.remove(peer)
            self.metrics.inc("net.heartbeat_failures")
            return
        self.directory.merge(value.get("addrs", {}))

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    payload = await read_frame(reader)
                except ProtocolError:
                    break  # peer sent garbage; drop the connection
                if payload is None:
                    break
                response = await self._handle(payload)
                await write_frame(writer, response)
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            # server shutdown cancels in-flight handlers; close quietly
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _handle(self, payload: dict[str, Any]) -> dict[str, Any]:
        try:
            value = await self._handle_op(payload)
        except TransientNetworkError as exc:
            return {"ok": False, "kind": "transient", "error": str(exc)}
        except ProtocolError as exc:
            kind = (
                "transport"
                if getattr(exc, "transport_failure", False)
                else "app"
            )
            return {"ok": False, "kind": kind, "error": str(exc)}
        except Exception as exc:  # reprolint: disable=R004 (server boundary)
            return {"ok": False, "kind": "app", "error": repr(exc)}
        return {"ok": True, "value": encode_payload(value)}

    async def _handle_op(self, payload: dict[str, Any]) -> Any:
        op = payload.get("op")
        if op == "rpc":
            return await self._handle_rpc(payload)
        if op == "hello":
            self.directory.merge(decode_payload(payload.get("addrs", {})))
            return {
                "id": self.main.id,
                "addrs": self.directory.snapshot(),
            }
        if op == "stats":
            return self.stats()
        if op == "client_get":
            return await self._client_call("get", int(payload["key"]))
        if op == "client_put":
            return await self._client_call(
                "put", int(payload["key"]), decode_payload(payload.get("value"))
            )
        if op == "shutdown":
            # ack first; the serve loop tears the process down
            asyncio.get_running_loop().call_soon(self._stopping.set)
            return {"stopping": True}
        raise ProtocolError(f"unknown op {op!r}")

    async def _handle_rpc(self, payload: dict[str, Any]) -> dict[str, Any]:
        self.directory.merge(decode_payload(payload.get("addrs", {})))
        loop = asyncio.get_running_loop()
        args = decode_payload(payload.get("args", []))
        kwargs = decode_payload(payload.get("kwargs", {}))
        result = await loop.run_in_executor(
            self._executor,
            lambda: self.network.dispatch(
                int(payload["to"]), str(payload["method"]), args, kwargs
            ),
        )
        return {"r": result, "addrs": self.directory.snapshot()}

    async def _client_call(self, method: str, *args: Any) -> dict[str, Any]:
        """Serve a client get/put through the main identity."""
        loop = asyncio.get_running_loop()
        if method == "get":
            value, hops = await loop.run_in_executor(
                self._executor, self.main.get, *args
            )
            self.metrics.inc("net.client_gets")
            return {"value": value, "hops": hops}
        holder, hops = await loop.run_in_executor(
            self._executor, self.main.put, *args
        )
        self.metrics.inc("net.client_puts")
        return {"holder": holder, "hops": hops}

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Point-in-time node snapshot (cheap: no remote calls)."""
        identities = {
            node.id: {
                "load": node.store.primary_count,
                "sybil": node is not self.main,
                "successor": (
                    node.successor_list[0] if node.successor_list else None
                ),
            }
            for node in self.identities()
        }
        return {
            "id": self.main.id,
            "addr": [self.addr[0], self.addr[1]],
            "strategy": self.config.strategy,
            "cycles": self.cycles,
            "identities": identities,
            "load": sum(v["load"] for v in identities.values()),
            "n_sybils": len(self.sybils()),
            "known_peers": len(self.directory),
            "messages": self.network.total_messages(),
            "fault_stats": self.network.fault_stats(),
            "metrics": self.metrics.as_dict(),
        }

    def request_stop(self) -> None:
        """Ask the node to shut down (signal-handler safe)."""
        self._stopping.set()

    async def run_until_stopped(self) -> None:
        """Block until :meth:`stop` (or a shutdown op) is requested."""
        await self._stopping.wait()
