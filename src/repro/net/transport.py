"""Wire transport for the live layer: length-prefixed JSON frames.

One frame is a 4-byte big-endian length followed by a UTF-8 JSON
document.  Both directions of every exchange are single frames, so the
protocol needs no streaming parser and any frame boundary error is
detected immediately.

Error split (mirrors :class:`repro.chord.network.SimNetwork`)
-------------------------------------------------------------
* :class:`~repro.errors.TransientNetworkError` — the message may never
  have reached the peer: connect/read timeout, refused or reset
  connection.  Worth retrying; :func:`request` / :func:`async_request`
  spend a bounded retry budget with exponential backoff before raising.
* :class:`~repro.errors.ProtocolError` with ``transport_failure=True`` —
  the peer answered but could not route (unknown/dead node id).  A
  detection, not noise: callers fall back, they do not resend.
* plain :class:`~repro.errors.ProtocolError` — an application-level
  error raised by the callee (e.g. "key not held").  Never retried.

Remote errors are carried in the response envelope::

    {"ok": true,  "value": <payload>}
    {"ok": false, "kind": "app" | "transport" | "transient", "error": "..."}

Payload codec
-------------
Chord RPC arguments include ``dict[int, value]`` item maps; JSON would
silently coerce the integer keys to strings.  :func:`encode_payload`
wraps every dict as ``{"__kv__": [[key, value], ...]}`` so key types
survive the round trip, and :func:`decode_payload` unwraps it.

Testability: both request functions accept an injectable ``sleep`` (and
the sync one a ``dial``), so timeout/backoff behaviour is unit-tested
with a fake clock — no test sleeps for real.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import time
from dataclasses import dataclass
from typing import Any, Awaitable, Callable

from repro.errors import ProtocolError, TransientNetworkError
from repro.obs.serialize import jsonable

__all__ = [
    "Address",
    "MAX_FRAME_BYTES",
    "RetryPolicy",
    "async_request",
    "decode_payload",
    "encode_frame",
    "encode_payload",
    "format_address",
    "parse_address",
    "read_frame",
    "read_frame_sync",
    "remote_error",
    "request",
    "write_frame",
    "write_frame_sync",
]

Address = tuple[str, int]

#: Hard cap on a single frame; a peer announcing more is a protocol
#: error (corrupt length prefix), not a bigger allocation.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_LEN = struct.Struct(">I")


# ----------------------------------------------------------------------
# addresses
# ----------------------------------------------------------------------
def parse_address(spec: str) -> Address:
    """``"host:port"`` -> ``(host, port)``."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ProtocolError(f"address must look like host:port, got {spec!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ProtocolError(f"bad port in address {spec!r}") from None


def format_address(addr: Address) -> str:
    return f"{addr[0]}:{addr[1]}"


# ----------------------------------------------------------------------
# payload codec (dict keys survive JSON)
# ----------------------------------------------------------------------
def encode_payload(obj: Any) -> Any:
    """JSON-safe encoding that preserves dict key types."""
    if isinstance(obj, dict):
        return {
            "__kv__": [
                [encode_payload(k), encode_payload(v)] for k, v in obj.items()
            ]
        }
    if isinstance(obj, (list, tuple)):
        return [encode_payload(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    # numpy scalars and friends
    return jsonable(obj)


def decode_payload(obj: Any) -> Any:
    """Inverse of :func:`encode_payload`."""
    if isinstance(obj, dict):
        if set(obj) == {"__kv__"}:
            return {
                decode_payload(k): decode_payload(v) for k, v in obj["__kv__"]
            }
        return {k: decode_payload(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [decode_payload(v) for v in obj]
    return obj


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------
def encode_frame(payload: dict[str, Any]) -> bytes:
    """Serialize one envelope as a length-prefixed JSON frame."""
    body = json.dumps(jsonable(payload), sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large: {len(body)} bytes")
    return _LEN.pack(len(body)) + body


def _decode_body(body: bytes) -> dict[str, Any]:
    payload = json.loads(body.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return payload


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one frame; ``None`` on clean EOF before a length prefix."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("truncated frame header") from exc
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced oversized frame ({length} bytes)")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("truncated frame body") from exc
    return _decode_body(body)


async def write_frame(
    writer: asyncio.StreamWriter, payload: dict[str, Any]
) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Per-message timeout / bounded-retry / backoff settings.

    ``retries`` counts *resends* beyond the first attempt, exactly like
    ``SimNetwork.transient_retries``.  The ``attempt``-th resend waits
    ``backoff * backoff_factor ** attempt`` seconds first.
    """

    timeout: float = 1.0
    retries: int = 2
    backoff: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ProtocolError(f"timeout must be > 0, got {self.timeout}")
        if self.retries < 0:
            raise ProtocolError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ProtocolError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_factor < 1.0:
            raise ProtocolError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff before resend number ``attempt`` (0-based)."""
        return self.backoff * self.backoff_factor**attempt

    def single_shot(self) -> "RetryPolicy":
        """The same timeouts with the retry budget removed."""
        if self.retries == 0:
            return self
        return RetryPolicy(
            timeout=self.timeout,
            retries=0,
            backoff=self.backoff,
            backoff_factor=self.backoff_factor,
        )


DEFAULT_POLICY = RetryPolicy()


# ----------------------------------------------------------------------
# remote error mapping
# ----------------------------------------------------------------------
def remote_error(envelope: dict[str, Any]) -> ProtocolError:
    """Build the local exception for a ``{"ok": false, ...}`` envelope."""
    kind = envelope.get("kind", "app")
    message = str(envelope.get("error", "remote error"))
    if kind == "transient":
        return TransientNetworkError(message)
    err = ProtocolError(message)
    if kind == "transport":
        err.transport_failure = True
    return err


def _unwrap(envelope: dict[str, Any]) -> Any:
    if envelope.get("ok"):
        return decode_payload(envelope.get("value"))
    raise remote_error(envelope)


# ----------------------------------------------------------------------
# synchronous client (used from the node's worker threads)
# ----------------------------------------------------------------------
def _dial_tcp(addr: Address, timeout: float) -> socket.socket:
    return socket.create_connection(addr, timeout=timeout)


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_sync(sock: socket.socket) -> dict[str, Any] | None:
    """Blocking twin of :func:`read_frame`; ``None`` on clean EOF.

    Used by thread-based servers (the fabric broker) that accept one
    request frame per connection — the asyncio reader above serves the
    live DHT layer, which multiplexes.
    """
    header = b""
    while len(header) < _LEN.size:
        chunk = sock.recv(_LEN.size - len(header))
        if not chunk:
            if not header:
                return None
            raise ProtocolError("truncated frame header")
        header += chunk
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced oversized frame ({length} bytes)")
    return _decode_body(_recv_exactly(sock, length))


def write_frame_sync(sock: socket.socket, payload: dict[str, Any]) -> None:
    """Blocking twin of :func:`write_frame`."""
    sock.sendall(encode_frame(payload))


def _exchange_sync(sock: socket.socket, frame: bytes) -> dict[str, Any]:
    sock.sendall(frame)
    (length,) = _LEN.unpack(_recv_exactly(sock, _LEN.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced oversized frame ({length} bytes)")
    return _decode_body(_recv_exactly(sock, length))


def request(
    addr: Address,
    payload: dict[str, Any],
    *,
    policy: RetryPolicy = DEFAULT_POLICY,
    dial: Callable[[Address, float], Any] = _dial_tcp,
    sleep: Callable[[float], None] = time.sleep,
) -> Any:
    """Send one request frame, return the decoded response value.

    Timeouts and connection failures are retried ``policy.retries``
    times with exponential backoff, then surface as
    :class:`TransientNetworkError`.  Errors reported *by the peer* are
    never retried — the message was delivered.
    """
    frame = encode_frame(payload)
    attempt = 0
    while True:
        sock = None
        try:
            sock = dial(addr, policy.timeout)
            envelope = _exchange_sync(sock, frame)
        except ProtocolError:
            raise
        except (OSError, ConnectionError) as exc:
            if attempt >= policy.retries:
                raise TransientNetworkError(
                    f"request to {format_address(addr)} failed after "
                    f"{attempt + 1} attempt(s): {exc}"
                ) from exc
            sleep(policy.delay(attempt))
            attempt += 1
            continue
        finally:
            if sock is not None:
                try:
                    sock.close()
                except OSError:  # pragma: no cover - close is best-effort
                    pass
        return _unwrap(envelope)


# ----------------------------------------------------------------------
# asyncio client (used by the stress generator)
# ----------------------------------------------------------------------
async def _exchange_async(
    addr: Address, frame: bytes, timeout: float
) -> dict[str, Any]:
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(addr[0], addr[1]), timeout
    )
    try:
        writer.write(frame)
        await asyncio.wait_for(writer.drain(), timeout)
        header = await asyncio.wait_for(reader.readexactly(_LEN.size), timeout)
        (length,) = _LEN.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"peer announced oversized frame ({length} bytes)"
            )
        body = await asyncio.wait_for(reader.readexactly(length), timeout)
        return _decode_body(body)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionError):  # pragma: no cover
            pass


async def async_request(
    addr: Address,
    payload: dict[str, Any],
    *,
    policy: RetryPolicy = DEFAULT_POLICY,
    sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
) -> Any:
    """Async twin of :func:`request` (same retry/backoff/error rules)."""
    frame = encode_frame(payload)
    attempt = 0
    while True:
        try:
            envelope = await _exchange_async(addr, frame, policy.timeout)
        except ProtocolError:
            raise
        except (
            OSError,
            ConnectionError,
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
        ) as exc:
            if attempt >= policy.retries:
                raise TransientNetworkError(
                    f"request to {format_address(addr)} failed after "
                    f"{attempt + 1} attempt(s): {exc!r}"
                ) from exc
            await sleep(policy.delay(attempt))
            attempt += 1
            continue
        return _unwrap(envelope)
