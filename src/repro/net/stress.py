"""Seeded concurrent load generator for a live ring (``repro stress``).

Replays get/put traffic against one or more :class:`~repro.net.node.LiveNode`
endpoints and measures what the tick simulator cannot: **wall-clock**
request latency (p50/p95/p99) and the wall-clock time the ring takes to
rebalance under a strategy.

Structure:

* ``concurrency`` asyncio workers each drive an independent request
  stream.  Everything *decided* — op mix, key choice, target choice —
  comes from per-worker generators spawned off ``--seed``, and the key
  pool is drawn by :func:`repro.sim.keydist.generate_task_keys`, so a
  stress run replays the exact key skew (uniform / clustered / Zipf) the
  simulations use.  Only the *measured* values (latencies, convergence
  seconds) are wall-clock.
* a poller task samples every target's ``stats`` op on a fixed cadence,
  tracking the load imbalance across all live identities (max/mean).
  The first sample at or below ``imbalance_threshold`` with work in the
  system marks **rebalance convergence**; a SIGKILLed target just drops
  out of the sample (counted as unreachable) instead of failing the run.
* every request and poll is recorded through the standard observability
  surface: a :class:`~repro.obs.metrics.MetricsRegistry` and any
  ``record(tick, kind, **fields)`` trace sink (JSONL for CI artifacts).

:func:`summarize` is a pure function from recorded samples to the
``--json`` summary dict, so its exact schema and arithmetic are unit
tested without opening a socket or sleeping.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Protocol

import numpy as np

from repro import sanitize
from repro.config import SimulationConfig
from repro.errors import ProtocolError, TransientNetworkError
from repro.hashspace.idspace import IdSpace
from repro.net.transport import Address, RetryPolicy, async_request
from repro.obs.metrics import MetricsRegistry
from repro.sim.keydist import generate_task_keys
from repro.util.rng import make_rng, spawn_seeds

__all__ = [
    "StressConfig",
    "StressOutcome",
    "run_stress",
    "run_stress_sync",
    "summarize",
]

SUMMARY_SCHEMA = "repro.stress.v1"


class _TraceSink(Protocol):
    def record(self, tick: int, kind: str, **fields: Any) -> None: ...


@dataclass(frozen=True)
class StressConfig:
    """Parameters of one stress run."""

    targets: tuple[Address, ...]
    duration: float = 5.0
    concurrency: int = 8
    seed: int = 0
    bits: int = 64
    #: key skew, straight from the simulator's workload models
    key_distribution: str = "uniform"
    n_clusters: int = 8
    cluster_spread: float = 0.01
    zipf_exponent: float = 1.2
    #: fraction of post-prefill requests that are gets
    get_fraction: float = 0.5
    #: puts each worker issues before mixing in gets
    prefill: int = 4
    #: distinct keys drawn from the distribution
    key_pool: int = 512
    poll_interval: float = 0.5
    #: max/mean identity load at or below this counts as balanced
    imbalance_threshold: float = 2.0
    policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(timeout=1.0, retries=1)
    )

    def __post_init__(self) -> None:
        if not self.targets:
            raise ProtocolError("stress needs at least one target")
        if self.duration <= 0:
            raise ProtocolError(f"duration must be > 0, got {self.duration}")
        if self.concurrency < 1:
            raise ProtocolError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )
        if not 0.0 <= self.get_fraction <= 1.0:
            raise ProtocolError(
                f"get_fraction must be in [0, 1], got {self.get_fraction}"
            )
        if self.key_pool < 1:
            raise ProtocolError(f"key_pool must be >= 1, got {self.key_pool}")
        if self.imbalance_threshold < 1.0:
            raise ProtocolError(
                "imbalance_threshold is a max/mean ratio; must be >= 1, "
                f"got {self.imbalance_threshold}"
            )


@dataclass
class StressOutcome:
    """Raw samples a run produced (input to :func:`summarize`).

    ``requests`` entries: ``{"op", "ok", "kind", "latency", "hops"}``
    where ``kind`` is the error class (``transient``/``transport``/
    ``app``) or ``None`` and ``latency`` is in seconds.
    ``polls`` entries: ``{"elapsed", "loads", "unreachable"}`` with
    ``loads`` the per-identity primary counts of every reachable target.
    """

    requests: list[dict[str, Any]] = field(default_factory=list)
    polls: list[dict[str, Any]] = field(default_factory=list)
    elapsed: float = 0.0


def _error_kind(exc: ProtocolError) -> str:
    if isinstance(exc, TransientNetworkError):
        return "transient"
    if getattr(exc, "transport_failure", False):
        return "transport"
    return "app"


def _imbalance(loads: list[int]) -> float | None:
    """Max/mean identity load; ``None`` while the ring holds no work."""
    if not loads:
        return None
    total = sum(loads)
    if total == 0:
        return None
    return max(loads) / (total / len(loads))


def _percentiles(latencies_ms: list[float]) -> dict[str, float | None]:
    if not latencies_ms:
        return {"p50": None, "p95": None, "p99": None, "mean": None, "max": None}
    arr = np.asarray(latencies_ms, dtype=float)
    p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
    return {
        "p50": round(float(p50), 3),
        "p95": round(float(p95), 3),
        "p99": round(float(p99), 3),
        "mean": round(float(arr.mean()), 3),
        "max": round(float(arr.max()), 3),
    }


def summarize(outcome: StressOutcome, config: StressConfig) -> dict[str, Any]:
    """The deterministic-schema ``--json`` summary for a run.

    Pure: every field is computed from the recorded samples, so tests
    pin the schema and the convergence/error arithmetic with hand-built
    outcomes (no sockets, no sleeping).
    """
    reqs = outcome.requests
    successes = [r for r in reqs if r["ok"]]
    errors = {"transient": 0, "transport": 0, "app": 0}
    for r in reqs:
        if not r["ok"]:
            errors[r["kind"]] = errors.get(r["kind"], 0) + 1
    latencies_ms = [r["latency"] * 1000.0 for r in successes]

    converged_at: float | None = None
    final_imbalance: float | None = None
    for poll in outcome.polls:
        ratio = _imbalance(poll["loads"])
        if ratio is None:
            continue
        final_imbalance = ratio
        if converged_at is None and ratio <= config.imbalance_threshold:
            converged_at = poll["elapsed"]

    elapsed = outcome.elapsed if outcome.elapsed > 0 else config.duration
    return {
        "schema": SUMMARY_SCHEMA,
        "seed": config.seed,
        "duration_s": round(elapsed, 3),
        "concurrency": config.concurrency,
        "targets": len(config.targets),
        "key_distribution": config.key_distribution,
        "requests": {
            "total": len(reqs),
            "success": len(successes),
            "errors": dict(sorted(errors.items())),
            "error_rate": (
                round(1.0 - len(successes) / len(reqs), 4) if reqs else None
            ),
        },
        "latency_ms": _percentiles(latencies_ms),
        "throughput_rps": (
            round(len(successes) / elapsed, 2) if elapsed > 0 else None
        ),
        "rebalance": {
            "threshold": config.imbalance_threshold,
            "samples": len(outcome.polls),
            "converged": converged_at is not None,
            "seconds": (
                round(converged_at, 3) if converged_at is not None else None
            ),
            "final_imbalance": (
                round(final_imbalance, 3)
                if final_imbalance is not None
                else None
            ),
        },
    }


# ----------------------------------------------------------------------
# the run itself
# ----------------------------------------------------------------------
async def _one_request(
    target: Address,
    payload: dict[str, Any],
    *,
    policy: RetryPolicy,
    clock: Any,
) -> dict[str, Any]:
    op = payload["op"].removeprefix("client_")
    start = clock()
    try:
        value = await async_request(target, payload, policy=policy)
    except ProtocolError as exc:
        return {
            "op": op,
            "ok": False,
            "kind": _error_kind(exc),
            "latency": clock() - start,
            "hops": None,
        }
    return {
        "op": op,
        "ok": True,
        "kind": None,
        "latency": clock() - start,
        "hops": value.get("hops"),
    }


async def _worker(
    index: int,
    config: StressConfig,
    keys: list[int],
    rng: np.random.Generator,
    outcome: StressOutcome,
    metrics: MetricsRegistry,
    trace: _TraceSink | None,
    deadline: float,
    clock: Any,
) -> None:
    stored: list[int] = []
    seq = 0
    while clock() < deadline:
        target = config.targets[int(rng.integers(0, len(config.targets)))]
        do_get = (
            seq >= config.prefill
            and stored
            and float(rng.random()) < config.get_fraction
        )
        if do_get:
            key = stored[int(rng.integers(0, len(stored)))]
            payload: dict[str, Any] = {"op": "client_get", "key": key}
        else:
            key = keys[int(rng.integers(0, len(keys)))]
            payload = {
                "op": "client_put",
                "key": key,
                "value": {"w": index, "n": seq},
            }
        record = await _one_request(
            target, payload, policy=config.policy, clock=clock
        )
        if record["ok"] and not do_get:
            stored.append(key)
        outcome.requests.append(record)
        metrics.inc("stress.requests")
        if record["ok"]:
            metrics.inc("stress.success")
        else:
            metrics.inc(f"stress.errors.{record['kind']}")
        if trace is not None:
            trace.record(
                len(outcome.requests),
                "request",
                worker=index,
                op=record["op"],
                ok=record["ok"],
                error=record["kind"],
                latency_ms=round(record["latency"] * 1000.0, 3),
                hops=record["hops"],
            )
        seq += 1


async def _poller(
    config: StressConfig,
    outcome: StressOutcome,
    metrics: MetricsRegistry,
    trace: _TraceSink | None,
    start: float,
    deadline: float,
    clock: Any,
) -> None:
    while clock() < deadline:
        loads: list[int] = []
        unreachable = 0
        for target in config.targets:
            try:
                stats = await async_request(
                    target, {"op": "stats"}, policy=config.policy
                )
            except ProtocolError:
                unreachable += 1
                continue
            loads.extend(
                int(ident["load"]) for ident in stats["identities"].values()
            )
        elapsed = clock() - start
        outcome.polls.append(
            {
                "elapsed": elapsed,
                "loads": sorted(loads),
                "unreachable": unreachable,
            }
        )
        metrics.inc("stress.polls")
        if unreachable:
            metrics.inc("stress.poll_unreachable", unreachable)
        if trace is not None:
            ratio = _imbalance(loads)
            trace.record(
                len(outcome.polls),
                "poll",
                elapsed_s=round(elapsed, 3),
                identities=len(loads),
                load_total=sum(loads),
                imbalance=round(ratio, 3) if ratio is not None else None,
                unreachable=unreachable,
            )
        await asyncio.sleep(config.poll_interval)


async def run_stress(
    config: StressConfig,
    *,
    metrics: MetricsRegistry | None = None,
    trace: _TraceSink | None = None,
) -> dict[str, Any]:
    """Run the load generator and return the summary dict."""
    metrics = metrics if metrics is not None else MetricsRegistry()
    space = IdSpace(config.bits)
    sim_cfg = SimulationConfig(
        seed=config.seed,
        bits=config.bits,
        key_distribution=config.key_distribution,  # type: ignore[arg-type]
        n_clusters=config.n_clusters,
        cluster_spread=config.cluster_spread,
        zipf_exponent=config.zipf_exponent,
    )
    key_seed, *worker_seeds = spawn_seeds(config.seed, config.concurrency + 1)
    keys = [
        int(k)
        for k in generate_task_keys(
            config.key_pool, sim_cfg, space, make_rng(key_seed)
        )
    ]
    outcome = StressOutcome()
    clock = time.perf_counter
    start = clock()
    deadline = start + config.duration
    # One spawned stream per concurrent worker — never a shared
    # generator (R009).  Under REPRO_SANITIZE=1 each stream is claimed
    # by its worker and the loop watches for blocking callbacks.
    worker_rngs = [make_rng(seed) for seed in worker_seeds]
    if sanitize.enabled():
        sanitize.install_asyncio_watch(asyncio.get_running_loop())
        for i, rng in enumerate(worker_rngs):
            sanitize.track_rng(rng, f"stress-worker-{i}")
    tasks = [
        asyncio.create_task(
            _worker(
                i,
                config,
                keys,
                worker_rngs[i],
                outcome,
                metrics,
                trace,
                deadline,
                clock,
            )
        )
        for i in range(config.concurrency)
    ]
    tasks.append(
        asyncio.create_task(
            _poller(config, outcome, metrics, trace, start, deadline, clock)
        )
    )
    await asyncio.gather(*tasks)
    outcome.elapsed = clock() - start
    summary = summarize(outcome, config)
    metrics.gauge("stress.elapsed_s", outcome.elapsed)
    for name, value in summary["latency_ms"].items():
        if value is not None:
            metrics.gauge(f"stress.latency_ms.{name}", value)
    if trace is not None:
        trace.record(
            len(outcome.requests),
            "summary",
            **{k: v for k, v in summary.items() if not isinstance(v, dict)},
        )
    return summary


def run_stress_sync(
    config: StressConfig,
    *,
    metrics: MetricsRegistry | None = None,
    trace: _TraceSink | None = None,
) -> dict[str, Any]:
    """Blocking entry point used by the CLI."""
    return asyncio.run(run_stress(config, metrics=metrics, trace=trace))
