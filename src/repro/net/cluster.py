"""Local multi-process ring launcher (``repro serve --ring N``).

Spawns ``N`` ``repro serve`` subprocesses on ephemeral loopback ports:
the first node creates the ring, the rest join it sequentially through
node 0.  Node identities are drawn from a generator seeded by the
cluster seed, so the same seed always builds the same ring layout.

Each child announces itself by printing one machine-readable line::

    REPRO-SERVE-READY {"id": ..., "host": "...", "port": ...}

A reader thread per child watches stdout for that line (and keeps
draining output afterwards so the pipe never fills), which is how the
launcher learns the ephemeral ports.  :meth:`LocalCluster.stop` sends
SIGTERM and reports whether every node exited cleanly within the
timeout — the CI net-smoke job asserts on that bool.  :meth:`kill`
SIGKILLs one node mid-run for the failover tests.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Sequence

import repro
from repro.errors import ProtocolError
from repro.hashspace.idspace import IdSpace
from repro.net.transport import Address
from repro.util.rng import make_rng

__all__ = ["ClusterNode", "LocalCluster", "READY_PREFIX"]

READY_PREFIX = "REPRO-SERVE-READY "

#: stdout lines kept per child for post-mortem debugging
_TAIL_LINES = 200


@dataclass
class ClusterNode:
    """One spawned ``repro serve`` process."""

    index: int
    node_id: int
    proc: subprocess.Popen
    host: str = "127.0.0.1"
    port: int = 0
    ready: threading.Event = field(default_factory=threading.Event)
    tail: list[str] = field(default_factory=list)

    @property
    def addr(self) -> Address:
        return (self.host, self.port)

    def alive(self) -> bool:
        return self.proc.poll() is None


class LocalCluster:
    """Spawn, address, and tear down a local ring of serve processes."""

    def __init__(
        self,
        n: int,
        *,
        seed: int = 0,
        strategy: str = "none",
        bits: int = 64,
        sybil_threshold: int = 0,
        max_sybils: int = 5,
        maintenance_interval: float = 0.2,
        host: str = "127.0.0.1",
        startup_timeout: float = 20.0,
        extra_args: Sequence[str] = (),
    ) -> None:
        if n < 1:
            raise ProtocolError(f"ring size must be >= 1, got {n}")
        self.n = n
        self.seed = seed
        self.strategy = strategy
        self.bits = bits
        self.sybil_threshold = sybil_threshold
        self.max_sybils = max_sybils
        self.maintenance_interval = maintenance_interval
        self.host = host
        self.startup_timeout = startup_timeout
        self.extra_args = list(extra_args)
        self.nodes: list[ClusterNode] = []
        self._readers: list[threading.Thread] = []

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Boot the ring; returns once every node has printed READY."""
        space = IdSpace(self.bits)
        rng = make_rng(self.seed)
        ids: list[int] = []
        while len(ids) < self.n:
            candidate = space.random_id(rng)
            if candidate not in ids:
                ids.append(candidate)
        try:
            for index, node_id in enumerate(ids):
                bootstrap = self.nodes[0].addr if index > 0 else None
                node = self._spawn(index, node_id, bootstrap)
                self.nodes.append(node)
                self._await_ready(node)
        except Exception:
            self.stop(timeout=5.0)
            raise

    def _spawn(
        self, index: int, node_id: int, bootstrap: Address | None
    ) -> ClusterNode:
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host", self.host,
            "--port", "0",
            "--id", str(node_id),
            "--seed", str(self.seed + index),
            "--bits", str(self.bits),
            "--strategy", self.strategy,
            "--sybil-threshold", str(self.sybil_threshold),
            "--max-sybils", str(self.max_sybils),
            "--maintenance-interval", str(self.maintenance_interval),
        ]
        if bootstrap is not None:
            cmd += ["--join", f"{bootstrap[0]}:{bootstrap[1]}"]
        cmd += self.extra_args
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH")) if p
        )
        proc = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        node = ClusterNode(index=index, node_id=node_id, proc=proc, host=self.host)
        assert proc.stdout is not None
        reader = threading.Thread(
            target=self._read_output,
            args=(node, proc.stdout),
            name=f"repro-cluster-{index}",
            daemon=True,
        )
        reader.start()
        self._readers.append(reader)
        return node

    @staticmethod
    def _read_output(node: ClusterNode, stream: IO[str]) -> None:
        for line in stream:
            line = line.rstrip("\n")
            node.tail.append(line)
            del node.tail[:-_TAIL_LINES]
            if line.startswith(READY_PREFIX) and not node.ready.is_set():
                try:
                    info = json.loads(line[len(READY_PREFIX):])
                    node.host = str(info["host"])
                    node.port = int(info["port"])
                    node.node_id = int(info["id"])
                except (ValueError, KeyError):
                    continue  # malformed banner; keep waiting
                node.ready.set()
        stream.close()

    def _await_ready(self, node: ClusterNode) -> None:
        deadline = time.monotonic() + self.startup_timeout
        while not node.ready.wait(timeout=0.1):
            if not node.alive():
                raise ProtocolError(
                    f"serve process {node.index} exited with "
                    f"{node.proc.returncode} before READY; tail:\n"
                    + "\n".join(node.tail[-20:])
                )
            if time.monotonic() > deadline:
                raise ProtocolError(
                    f"serve process {node.index} not READY after "
                    f"{self.startup_timeout}s; tail:\n"
                    + "\n".join(node.tail[-20:])
                )

    # ------------------------------------------------------------------
    def addrs(self) -> list[Address]:
        return [node.addr for node in self.nodes]

    def kill(self, index: int, sig: int = signal.SIGKILL) -> None:
        """Abruptly kill one node (failover testing)."""
        node = self.nodes[index]
        if node.alive():
            node.proc.send_signal(sig)
            node.proc.wait(timeout=10)

    def stop(self, timeout: float = 10.0) -> bool:
        """SIGTERM everyone; True iff all exited cleanly in time.

        A node that needs SIGKILL (or already died with a non-zero /
        signal status *other than our own SIGTERM/SIGKILL*) makes this
        return False.
        """
        clean = True
        for node in self.nodes:
            if node.alive():
                node.proc.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + timeout
        for node in self.nodes:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                node.proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                node.proc.kill()
                node.proc.wait()
                clean = False
            rc = node.proc.returncode
            # 0 = graceful; -SIGTERM = died before its handler engaged;
            # -SIGKILL only ever comes from kill()/the timeout path above
            if rc not in (0, -signal.SIGTERM, -signal.SIGKILL):
                clean = False
        for reader in self._readers:
            reader.join(timeout=2)
        return clean

    # ------------------------------------------------------------------
    def __enter__(self) -> "LocalCluster":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
