"""Live networked deployment of the protocol layer (ROADMAP item 1).

The simulator (:mod:`repro.sim`) and the in-memory protocol twin
(:mod:`repro.chord`) measure everything in *ticks*.  This package runs
the very same :class:`~repro.chord.node.ChordNode` logic on real TCP
sockets under real client traffic, so tail latency and rebalance
convergence can be measured in wall-clock time:

* :mod:`repro.net.transport` — length-prefixed JSON frames with
  per-message timeout, bounded retries and exponential backoff, raising
  the same :class:`~repro.errors.TransientNetworkError` /
  :class:`~repro.errors.ProtocolError` split as the in-memory fabric;
* :mod:`repro.net.node` — an asyncio node (``repro serve``) hosting one
  main Chord identity plus any strategy-spawned Sybils, with
  stabilize / fix-fingers / heartbeat as seeded-jitter asyncio tasks;
* :mod:`repro.net.stress` — a seeded concurrent get/put load generator
  (``repro stress``) reusing :mod:`repro.sim.keydist` key skew and
  recording wall-clock latency through the
  :class:`~repro.obs.MetricsRegistry` and JSONL trace sink;
* :mod:`repro.net.cluster` — a local multi-process ring launcher
  (``repro serve --ring N``) used by tests and the CI net-smoke job.

The live layer is strictly additive: nothing here is imported by the
simulation path, so seeded simulation fingerprints stay bit-identical
(enforced by the obs-smoke CI gate).
"""

from __future__ import annotations

from repro.net.transport import (
    Address,
    RetryPolicy,
    async_request,
    decode_payload,
    encode_frame,
    encode_payload,
    parse_address,
    request,
)

__all__ = [
    "Address",
    "RetryPolicy",
    "async_request",
    "decode_payload",
    "encode_frame",
    "encode_payload",
    "parse_address",
    "request",
]
