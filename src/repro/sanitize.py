"""Runtime determinism sanitizer (``REPRO_SANITIZE=1``).

The static rules R007–R009 prove properties of the *source*; this
module checks the same invariants on a *running* process, where dynamic
dispatch, pickling, and scheduler interleavings live.  Everything here
is dormant unless the ``REPRO_SANITIZE`` environment variable is ``1``:
the guards read the flag at call time, so a test can flip it per-case,
and the instrumented code paths cost one truthiness check when off —
the obs-smoke zero-overhead budget still holds.

Checks
------

* :func:`track_rng` — registers which logical owner a
  ``numpy.random.Generator`` instance belongs to; a second owner
  claiming the same ``BitGenerator`` is cross-consumer stream aliasing
  (the dynamic face of R009) and raises :class:`SanitizeError`.
* :func:`forbid_generators` — recursively scans a payload about to
  cross a process boundary (a shard-worker task tuple) and raises if a
  ``Generator`` is embedded: a pickled generator forks the stream state
  silently, the classic "every worker draws the same numbers" bug.
* :func:`check_shard_plan` — re-derives the disjointness contract of a
  :class:`~repro.sim.shard.ShardPlan` before the fan-out: element
  bounds must tile ``[0, n)`` monotonically, cut only on group starts,
  and the CSR ``order`` must be a permutation — together that makes the
  per-shard slab write ranges provably disjoint (the dynamic face of
  R008).
* :func:`maybe_guard` — context manager asserting a phase is RNG-free:
  the guarded generator's state must be bit-identical on exit (the
  sharded consumption phase promises exactly this).
* :func:`install_asyncio_watch` — flips the loop into asyncio debug
  mode with a tight ``slow_callback_duration`` and records every
  "Executing ... took" complaint (the dynamic face of R007's
  blocked-loop check).

Violations both *raise* :class:`~repro.errors.SanitizeError` (for the
checks with a raise site) and accumulate in :func:`reports`, which the
smoke scripts assert empty; the asyncio watch only accumulates, since
raising from a log handler would be swallowed by the loop.
"""

from __future__ import annotations

import contextlib
import logging
import os
from typing import Any, Iterator, Union

import numpy as np

from repro.errors import SanitizeError

__all__ = [
    "ENV_FLAG",
    "enabled",
    "reset",
    "reports",
    "report_count",
    "track_rng",
    "forbid_generators",
    "check_shard_plan",
    "maybe_guard",
    "install_asyncio_watch",
]

ENV_FLAG = "REPRO_SANITIZE"


def enabled() -> bool:
    """Whether the sanitizer is active (checked at every call site, so
    tests and smoke scripts can toggle it mid-process)."""
    return os.environ.get(ENV_FLAG, "") == "1"


#: Violation messages, in detection order.
_REPORTS: list[str] = []
#: id(BitGenerator) -> (owner label, pid). Keyed on the BitGenerator so
#: two Generator wrappers over one stream still collide.
_RNG_OWNERS: dict[int, tuple[str, int]] = {}
#: Strong references backing the id() keys above: without them a freed
#: BitGenerator's address could be reissued to a fresh one and fake an
#: aliasing hit.  Bounded by the number of tracked generators per run.
_RNG_REFS: dict[int, Any] = {}
#: Loops already switched into debug mode (guards double-install).
_WATCHED_LOOPS: "set[int]" = set()
_WATCH_HANDLER: Union[logging.Handler, None] = None


def reset() -> None:
    """Clear accumulated reports and ownership state (test isolation)."""
    _REPORTS.clear()
    _RNG_OWNERS.clear()
    _RNG_REFS.clear()


def reports() -> list[str]:
    """Accumulated violation messages (copy)."""
    return list(_REPORTS)


def report_count() -> int:
    return len(_REPORTS)


def _violate(message: str) -> None:
    _REPORTS.append(message)
    raise SanitizeError(message)


# ----------------------------------------------------------------------
# RNG ownership (dynamic R009)
# ----------------------------------------------------------------------
def track_rng(rng: np.random.Generator, owner: str) -> None:
    """Claim ``rng`` for ``owner``; a conflicting claim raises.

    Owners are logical consumers ("tick-engine", "stress-worker-3",
    "node-jitter"). Re-claiming by the same owner in the same process
    is idempotent; a *different* owner on the same underlying
    ``BitGenerator`` means two concurrent consumers share one stream
    cursor.
    """
    if not enabled():
        return
    key = id(rng.bit_generator)
    pid = os.getpid()
    prior = _RNG_OWNERS.get(key)
    if prior is not None and prior != (owner, pid) and prior[1] == pid:
        _violate(
            f"rng-aliasing: generator claimed by {owner!r} is already "
            f"owned by {prior[0]!r} — one stream, two concurrent "
            "consumers"
        )
    _RNG_OWNERS[key] = (owner, pid)
    _RNG_REFS[key] = rng.bit_generator


def forbid_generators(obj: Any, where: str, _depth: int = 0) -> None:
    """Raise if a ``numpy.random.Generator`` (or ``SeedSequence``-less
    ``BitGenerator``) hides anywhere inside ``obj``.

    Used on shard-task payloads: a generator crossing a process
    boundary is duplicated by pickling, so parent and worker then emit
    identical "random" draws.
    """
    if not enabled() or _depth > 6:
        return
    if isinstance(obj, (np.random.Generator, np.random.BitGenerator)):
        _violate(
            f"generator-in-payload: a numpy Generator is embedded in "
            f"{where} — pickling forks the stream state; ship a spawned "
            "SeedSequence and build the generator worker-side"
        )
    if isinstance(obj, dict):
        for key, value in obj.items():
            forbid_generators(key, where, _depth + 1)
            forbid_generators(value, where, _depth + 1)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            forbid_generators(item, where, _depth + 1)


# ----------------------------------------------------------------------
# shard-plan disjointness (dynamic R008)
# ----------------------------------------------------------------------
def check_shard_plan(
    el_bounds: np.ndarray,
    starts: np.ndarray,
    order: np.ndarray,
    n_elements: int,
) -> None:
    """Verify a shard plan's write ranges are a disjoint tiling.

    ``el_bounds`` are the per-shard element offsets into the CSR
    ``order`` array, ``starts`` the group start offsets.  The contract:
    bounds run monotonically from 0 to ``n_elements``; every interior
    cut lands exactly on a group start (no owner group straddles a
    shard); and ``order`` is a permutation of ``[0, n)``.  Together
    these guarantee the slab slots written by different shards are
    disjoint sets.
    """
    if not enabled():
        return
    bounds = np.asarray(el_bounds)
    if bounds.size < 2 or bounds[0] != 0 or bounds[-1] != n_elements:
        _violate(
            "shard-plan: element bounds do not tile [0, "
            f"{n_elements}) — got {bounds.tolist()}"
        )
    if np.any(np.diff(bounds) < 0):
        _violate(
            f"shard-plan: element bounds not monotone: {bounds.tolist()}"
        )
    interior = bounds[1:-1]
    legal_cuts = np.append(np.asarray(starts), n_elements)
    if interior.size and not np.isin(interior, legal_cuts).all():
        bad = interior[~np.isin(interior, legal_cuts)]
        _violate(
            "shard-plan: cut(s) inside an owner group at element "
            f"offset(s) {bad.tolist()} — a group straddling shards "
            "makes two workers write the same slots"
        )
    order_arr = np.asarray(order)
    if order_arr.size != n_elements or (
        n_elements
        and not np.array_equal(
            np.sort(order_arr), np.arange(n_elements, dtype=order_arr.dtype)
        )
    ):
        _violate(
            "shard-plan: CSR order is not a permutation of "
            f"[0, {n_elements}) — duplicate or missing slots mean "
            "overlapping shard writes"
        )


# ----------------------------------------------------------------------
# RNG-free phase guard
# ----------------------------------------------------------------------
@contextlib.contextmanager
def maybe_guard(
    rng: np.random.Generator, label: str
) -> Iterator[None]:
    """Assert no draw happens on ``rng`` inside the block.

    The sharded consumption phase (and any future parallel phase)
    promises to be RNG-free — that is *why* shard count cannot perturb
    a trajectory.  The guard fingerprints the generator state before
    and after; a mismatch means a draw leaked into the parallel phase.
    No-op when the sanitizer is off.
    """
    if not enabled():
        yield
        return
    before = repr(rng.bit_generator.state)
    yield
    after = repr(rng.bit_generator.state)
    if before != after:
        _violate(
            f"rng-in-parallel-phase: generator state advanced inside "
            f"{label} — this phase is contracted to be RNG-free; a "
            "draw here makes results depend on scheduling"
        )


# ----------------------------------------------------------------------
# asyncio blocked-loop watch (dynamic R007)
# ----------------------------------------------------------------------
class _AsyncioWatchHandler(logging.Handler):
    """Captures asyncio debug-mode slow-callback complaints."""

    def emit(self, record: logging.LogRecord) -> None:
        message = record.getMessage()
        if "Executing" in message and "took" in message:
            _REPORTS.append(f"blocked-event-loop: {message}")


def install_asyncio_watch(loop: Any, slow_callback_s: float = 0.5) -> None:
    """Enable asyncio debug mode on ``loop`` and record slow callbacks.

    Debug mode makes the loop time every callback and log a warning
    when one exceeds ``slow_callback_duration`` — exactly the blocking
    R007 hunts statically.  The warnings land in :func:`reports` (they
    cannot raise: the loop swallows handler exceptions), and the smoke
    scripts fail on a non-empty report list.  Idempotent per loop.
    """
    global _WATCH_HANDLER
    if not enabled():
        return
    if id(loop) in _WATCHED_LOOPS:
        return
    loop.set_debug(True)
    loop.slow_callback_duration = slow_callback_s
    _WATCHED_LOOPS.add(id(loop))
    if _WATCH_HANDLER is None:
        _WATCH_HANDLER = _AsyncioWatchHandler(level=logging.WARNING)
        logging.getLogger("asyncio").addHandler(_WATCH_HANDLER)
