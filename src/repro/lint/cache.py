"""Content-hash lint cache.

``make lint`` on an unchanged tree should be near-instant: the whole
run is a pure function of (rule-set version, selected rule ids, the
relative label and content hash of every collected file), so one
sha256 over that tuple keys the finished report.  A hit replays the
stored findings without parsing a single file; cached and uncached
reports are byte-identical under every renderer because the report is
reconstructed field-for-field (only the in-memory ``from_cache`` flag
differs, and no renderer serializes it).

Layout mirrors :mod:`repro.sim.cache`: one JSON file per key under
``~/.cache/repro/lint`` (override with ``REPRO_LINT_CACHE_DIR``),
written atomically via temp-file rename.  ``REPRO_LINT_CACHE=0``
disables the cache entirely; corrupt or unreadable entries are treated
as misses, never as errors — the cache can only make linting faster,
not wronger.

``RULESET_VERSION`` must be bumped whenever any rule's logic changes,
otherwise a stale report could mask a new finding on an unchanged tree.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Sequence, Union

from repro.lint.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.engine import LintReport

__all__ = [
    "RULESET_VERSION",
    "cache_enabled",
    "cache_dir",
    "tree_key",
    "load",
    "store",
]

#: Bump on ANY rule-logic change — it participates in every cache key.
RULESET_VERSION = "reprolint-v2.0"

ENV_CACHE = "REPRO_LINT_CACHE"
ENV_CACHE_DIR = "REPRO_LINT_CACHE_DIR"

_PAYLOAD_FORMAT = "repro.lint_cache.v1"


def cache_enabled() -> bool:
    """Cache is on unless ``REPRO_LINT_CACHE=0``."""
    return os.environ.get(ENV_CACHE, "1") != "0"


def cache_dir() -> Path:
    override = os.environ.get(ENV_CACHE_DIR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "lint"


def tree_key(
    rule_ids: Sequence[str], sources: Sequence[tuple[str, str]]
) -> str:
    """sha256 key over the rule set and every (label, content) pair."""
    manifest = {
        "ruleset": RULESET_VERSION,
        "rules": sorted(rule_ids),
        "files": sorted(
            (label, hashlib.sha256(source.encode("utf-8")).hexdigest())
            for label, source in sources
        ),
    }
    blob = json.dumps(manifest, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _entry_path(key: str) -> Path:
    return cache_dir() / f"{key}.json"


def load(key: str) -> Union["LintReport", None]:
    """Stored report for ``key``, or ``None`` on any miss/corruption."""
    from repro.lint.engine import LintReport

    path = _entry_path(key)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("format") != _PAYLOAD_FORMAT:
        return None
    try:
        findings = [
            Finding(
                rule=f["rule"],
                severity=Severity(f["severity"]),
                path=f["path"],
                line=int(f["line"]),
                col=int(f["col"]),
                message=f["message"],
            )
            for f in payload["findings"]
        ]
        return LintReport(
            findings=findings,
            n_files=int(payload["n_files"]),
            n_suppressed=int(payload["n_suppressed"]),
            rules_run=list(payload["rules"]),
            from_cache=True,
        )
    except (KeyError, TypeError, ValueError):
        return None


def store(key: str, report: "LintReport") -> None:
    """Atomically persist ``report``; cache errors are swallowed."""
    payload = {
        "format": _PAYLOAD_FORMAT,
        "rules": report.rules_run,
        "n_files": report.n_files,
        "n_suppressed": report.n_suppressed,
        "findings": [f.to_dict() for f in report.findings],
    }
    directory = cache_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=".lint-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, _entry_path(key))
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
    except OSError:
        return
