"""R003 uint64-arithmetic: id math must stay unsigned.

The simulator stores ring identifiers as ``uint64`` arrays and relies on
NEP 50 semantics (numpy >= 2.0): mixing a uint64 array with a Python
*float* silently promotes the whole expression to ``float64``, which has
53 bits of mantissa — ids above 2**53 lose low bits and two distinct
identifiers can collapse into one.  Signed subtraction is the other
trap: ``a - b`` on uint64 wraps modulo 2**64, which is exactly right for
ring distances *when done deliberately* and silently wrong everywhere
else.

The blessed helpers in ``sim/arcops.py`` and ``sim/state.py`` own that
deliberate wraparound math; outside them this rule flags arithmetic on
uint64-tainted names that mixes in floats or uses bare subtraction.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.base import FileContext, Rule, register
from repro.lint.findings import Finding

__all__ = ["Uint64Arithmetic", "BLESSED_UINT64_MODULES"]

#: Modules that implement the deliberate wraparound arithmetic everyone
#: else must call instead of hand-rolling.
BLESSED_UINT64_MODULES = (
    "sim/arcops.py",
    "sim/state.py",
    "hashspace/idspace.py",
)


def _is_uint64_marker(node: ast.AST) -> bool:
    """``np.uint64`` / ``numpy.uint64`` / the string ``"uint64"``."""
    if isinstance(node, ast.Constant) and node.value == "uint64":
        return True
    if isinstance(node, ast.Attribute) and node.attr == "uint64":
        base = node.value
        return isinstance(base, ast.Name) and base.id in ("np", "numpy")
    return False


def _taints_uint64(value: ast.AST) -> bool:
    """Whether an assigned expression produces uint64 data.

    Recognized forms: ``np.uint64(x)``, any call carrying
    ``dtype=np.uint64`` / ``dtype="uint64"``, and ``x.astype(np.uint64)``.
    """
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if _is_uint64_marker(func):
        return True
    if isinstance(func, ast.Attribute) and func.attr == "astype":
        return bool(value.args) and _is_uint64_marker(value.args[0])
    for kw in value.keywords:
        if kw.arg == "dtype" and _is_uint64_marker(kw.value):
            return True
    return False


def _is_floatish(node: ast.AST) -> bool:
    """Float literals and explicit float(...) conversions."""
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    ):
        return True
    return False


_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


class _Scope(ast.NodeVisitor):
    """Collect uint64-tainted names for one function (or module) body.

    Nested function definitions are *not* descended into — each one is
    its own scope, analysed separately with the enclosing taints (minus
    its shadowing parameters) inherited.
    """

    def __init__(self, inherited: frozenset[str] = frozenset()) -> None:
        self.tainted: set[str] = set(inherited)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # separate scope

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass  # separate scope

    def visit_Assign(self, node: ast.Assign) -> None:
        if _taints_uint64(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.tainted.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and _taints_uint64(node.value):
            if isinstance(node.target, ast.Name):
                self.tainted.add(node.target.id)
        self.generic_visit(node)


def _param_names(node: ast.AST) -> set[str]:
    """Parameter names of a function definition (they shadow taints)."""
    args = node.args  # type: ignore[attr-defined]
    names = {
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    }
    for special in (args.vararg, args.kwarg):
        if special is not None:
            names.add(special.arg)
    return names


def _scope_nodes(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Every node lexically inside this scope's body.

    Stops at nested function boundaries: the function node itself is
    yielded (so the caller can recurse into it as a new scope), but its
    body is not entered.  Decorators and default-argument expressions
    evaluate in the enclosing scope, so those children are still walked.
    """
    stack: list[ast.AST] = list(reversed(body))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _FUNCTION_NODES):
            stack.extend(node.decorator_list)
            stack.extend(node.args.defaults)
            stack.extend(d for d in node.args.kw_defaults if d is not None)
            continue
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


@register
class Uint64Arithmetic(Rule):
    """R003: no float mixing or bare subtraction on uint64 id data.

    A name becomes *tainted* when assigned from ``np.uint64(...)``, a
    call with ``dtype=np.uint64``, or ``.astype(np.uint64)``.  Taint is
    tracked per lexical scope (module level plus each function body,
    with enclosing taints inherited minus shadowing parameters), so a
    name assigned uint64 in one function does not taint its namesake in
    another.  Within a tainted scope this rule then flags:

    * any arithmetic mixing a tainted name with a float literal or
      ``float(...)`` call (NEP 50 promotes to float64, losing id bits);
    * true division ``/`` of a tainted name (always produces float64);
    * bare subtraction ``a - b`` or unary minus involving a tainted
      name (uint64 wraparound) — use the blessed distance/arc helpers
      in ``sim/arcops.py`` / ``sim/state.py`` instead.

    The blessed modules themselves are exempt: they *are* the
    wraparound implementation.
    """

    rule_id = "R003"
    name = "uint64-arithmetic"
    summary = "id math stays uint64; no float promotion or bare subtraction"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.is_file(*BLESSED_UINT64_MODULES):
            return
        yield from self._check_scope(ctx, ctx.tree.body, frozenset())

    def _check_scope(
        self,
        ctx: FileContext,
        body: list[ast.stmt],
        inherited: frozenset[str],
    ) -> Iterator[Finding]:
        """Flag hazards in one lexical scope, then recurse into nested
        function scopes with the (shadowing-adjusted) taints."""
        collector = _Scope(inherited)
        for stmt in body:
            collector.visit(stmt)
        tainted = collector.tainted
        for node in _scope_nodes(body):
            if isinstance(node, _FUNCTION_NODES):
                yield from self._check_scope(
                    ctx,
                    node.body,
                    frozenset(tainted - _param_names(node)),
                )
            elif isinstance(node, ast.BinOp):
                yield from self._check_binop(ctx, node, tainted)
            elif isinstance(node, ast.UnaryOp):
                if isinstance(node.op, ast.USub) and self._tainted(
                    node.operand, tainted
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "unary minus on uint64 data wraps modulo 2**64 — "
                        "use the arc helpers in sim/arcops.py",
                    )

    @staticmethod
    def _tainted(node: ast.AST, tainted: set[str]) -> bool:
        return isinstance(node, ast.Name) and node.id in tainted

    def _check_binop(
        self, ctx: FileContext, node: ast.BinOp, tainted: set[str]
    ) -> Iterator[Finding]:
        left_t = self._tainted(node.left, tainted)
        right_t = self._tainted(node.right, tainted)
        if not (left_t or right_t):
            return
        if _is_floatish(node.left) or _is_floatish(node.right):
            yield self.finding(
                ctx,
                node,
                "uint64 data mixed with a float — NEP 50 promotes to "
                "float64 and ids above 2**53 lose low bits; keep the "
                "expression unsigned or go through sim/arcops.py",
            )
            return
        if isinstance(node.op, ast.Div):
            yield self.finding(
                ctx,
                node,
                "true division of uint64 data produces float64 (id "
                "precision loss above 2**53) — use // or the blessed "
                "helpers",
            )
        elif isinstance(node.op, ast.Sub):
            yield self.finding(
                ctx,
                node,
                "bare subtraction on uint64 data wraps modulo 2**64 — "
                "use the ring-distance helpers in sim/arcops.py / "
                "sim/state.py",
            )
