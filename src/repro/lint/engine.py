"""Lint driver: collect files, run rules, render reports.

Everything here is deterministic by construction: files are walked in
sorted order, findings are sorted before rendering, and the JSON report
contains no timestamps, absolute paths, or machine identifiers — two
runs over the same tree produce byte-identical output (CI archives and
diffs the artifact).
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence, Union

from repro.errors import LintError
from repro.lint.base import FileContext, ProjectRule, Rule, resolve_rules
from repro.lint.findings import Finding, Severity
from repro.lint.suppress import parse_suppressions

__all__ = ["LintReport", "lint_paths", "render_human", "render_json"]

#: Directories never descended into.
_SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".mypy_cache",
    ".pytest_cache",
    ".ruff_cache",
    ".venv",
    "build",
    "dist",
}


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding]
    n_files: int
    n_suppressed: int
    rules_run: list[str] = field(default_factory=list)
    #: True when the report was served from the content-hash cache.
    #: Not part of any rendered format — cached and uncached renders of
    #: the same tree must stay byte-identical.
    from_cache: bool = False

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0


def _collect_files(paths: Sequence[Union[str, Path]]) -> list[Path]:
    """Every ``.py`` file under the given paths, sorted, deduplicated."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise LintError(f"lint path does not exist: {path}")
        if path.is_file():
            if path.suffix == ".py":
                out.add(path.resolve())
            continue
        for candidate in sorted(path.rglob("*.py")):
            if not any(part in _SKIP_DIRS for part in candidate.parts):
                out.add(candidate.resolve())
    return sorted(out)


def _relative_label(file: Path, root: Path) -> str:
    """Posix-style path relative to the lint root (stable across hosts).

    Files outside the root keep explicit ``..`` segments: collapsing to
    the bare filename would strip the directory parts that scope rules
    like R002/R003 and could collide in the per-file suppression table
    when two linted files share a basename.
    """
    try:
        return Path(os.path.relpath(file, root)).as_posix()
    except ValueError:
        # No relative route (e.g. different drives): fall back to the
        # full path, which is still unique and keeps directory parts.
        return file.as_posix()


def lint_paths(
    paths: Sequence[Union[str, Path]],
    *,
    select: Union[Iterable[str], None] = None,
    root: Union[str, Path, None] = None,
    cache: bool = True,
) -> LintReport:
    """Lint every python file under ``paths`` with the selected rules.

    ``root`` anchors the relative paths in findings (defaults to the
    current working directory); suppression comments are honored before
    findings reach the report.  With ``cache=True`` (the default) the
    run consults the content-hash cache (:mod:`repro.lint.cache`): an
    unchanged tree with an unchanged rule set replays the stored report
    without parsing or running any rule.
    """
    from repro.lint import cache as lint_cache

    rules = resolve_rules(select)
    root_path = Path(root).resolve() if root is not None else Path.cwd()
    files = _collect_files(paths)

    sources: list[tuple[str, str]] = []
    for file in files:
        sources.append(
            (_relative_label(file, root_path), file.read_text(encoding="utf-8"))
        )

    cache_key: Union[str, None] = None
    if cache and lint_cache.cache_enabled():
        cache_key = lint_cache.tree_key(
            [r.rule_id for r in rules], sources
        )
        cached = lint_cache.load(cache_key)
        if cached is not None:
            return cached

    ctxs: list[FileContext] = []
    findings: list[Finding] = []
    for label, source in sources:
        try:
            tree = ast.parse(source, filename=label)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="R000",
                    severity=Severity.ERROR,
                    path=label,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        ctxs.append(FileContext(path=label, source=source, tree=tree))

    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]

    raw: list[Finding] = []
    for ctx in ctxs:
        for rule in file_rules:
            raw.extend(rule.check(ctx))
    if project_rules:
        from repro.lint.projectmodel import build_project_model

        model = build_project_model(ctxs)
        for rule in project_rules:
            raw.extend(rule.check_project(model))

    suppressions = {
        ctx.path: parse_suppressions(ctx.source) for ctx in ctxs
    }
    n_suppressed = 0
    for finding in raw:
        supp = suppressions.get(finding.path)
        if supp is not None and supp.is_suppressed(
            finding.rule, finding.line
        ):
            n_suppressed += 1
            continue
        findings.append(finding)

    findings.sort(key=Finding.sort_key)
    report = LintReport(
        findings=findings,
        n_files=len(files),
        n_suppressed=n_suppressed,
        rules_run=[r.rule_id for r in rules],
    )
    if cache_key is not None:
        lint_cache.store(cache_key, report)
    return report


def render_human(report: LintReport) -> str:
    """Terminal report: one line per finding plus a summary line."""
    lines = [f.render() for f in report.findings]
    n_err = len(report.errors)
    n_warn = len(report.findings) - n_err
    summary = (
        f"checked {report.n_files} file(s) "
        f"[{', '.join(report.rules_run)}]: "
        f"{n_err} error(s), {n_warn} warning(s)"
    )
    if report.n_suppressed:
        summary += f", {report.n_suppressed} suppressed"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Deterministic JSON artifact (sorted findings, no timestamps)."""
    payload = {
        "format": "repro.lint_report.v1",
        "rules": report.rules_run,
        "n_files": report.n_files,
        "n_suppressed": report.n_suppressed,
        "findings": [f.to_dict() for f in report.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
