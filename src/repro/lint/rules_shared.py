"""R008 shared-state hazard: concurrent code must not mutate shared state.

The sharded tick engine and the live node both promise bit-identical
seeded results, and both keep that promise the same way: concurrent
workers only ever write *disjoint* data (whole-group slab arcs planned
by ``plan_shards``; per-trial result slots keyed by index).  Any other
shared mutable write from concurrently-executing code is a race that a
green test run cannot rule out.  R008 pins the discipline statically,
using the project model's call graph:

* **Part A — module-level mutable state.**  A module-level ``dict`` /
  ``list`` / ``set`` (or ``defaultdict``/``Counter``/``deque``/... )
  mutated by a function *reachable from a concurrent entry point* — a
  function handed to ``pool.map``/``submit``, ``loop.create_task``,
  ``run_in_executor``, ``Thread(target=...)``, an asyncio server
  callback — is flagged at the mutation site.  Fork-inherited
  per-process caches (like the worker-side attachment cache in
  ``sim/shard.py``) are legitimate, but each such write carries a
  justified inline suppression so the exemption is visible in the diff.
* **Part B — shared-memory slab writes.**  A NumPy view over a
  ``multiprocessing.shared_memory`` buffer (``np.frombuffer(shm.buf)``
  or the worker-side ``_attach`` helper) written through a subscript
  outside the blessed writer (``_ShmMirror.write``, which the engine
  calls strictly *between* parallel phases) bypasses the plan_shards
  disjointness contract — exactly the out-of-partition write the
  runtime sanitizer (:mod:`repro.sanitize`) hunts dynamically.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from repro.lint.base import ProjectRule, register
from repro.lint.findings import Finding
from repro.lint.projectmodel import (
    FunctionInfo,
    ProjectModel,
    attr_chain,
)

__all__ = ["SharedStateHazard"]

#: Constructors whose result is mutable shared state when bound at
#: module level.
_MUTABLE_FACTORIES = frozenset(
    {
        "dict",
        "list",
        "set",
        "Counter",
        "defaultdict",
        "deque",
        "OrderedDict",
    }
)

#: Method calls that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "remove",
        "discard",
        "pop",
        "popitem",
        "popleft",
        "appendleft",
        "clear",
        "setdefault",
        "sort",
        "reverse",
    }
)

#: Qualname suffixes sanctioned to write shared-memory views: the
#: engine-side mirror writer runs between parallel phases, never inside
#: one.
_BLESSED_SHM_WRITERS = ("._ShmMirror.write",)


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call):
        chain = attr_chain(node.func)
        return bool(chain) and chain[-1] in _MUTABLE_FACTORIES
    return False


def _module_level_mutables(tree: ast.Module) -> dict[str, int]:
    """``{name: lineno}`` of module-level mutable bindings (dunders like
    ``__all__`` excluded — nothing mutates an export list at runtime)."""
    out: dict[str, int] = {}
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: Union[ast.expr, None] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not _is_mutable_literal(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name) and not (
                target.id.startswith("__") and target.id.endswith("__")
            ):
                out[target.id] = stmt.lineno
    return out


def _uses_shared_memory(ctx_tree: ast.Module) -> bool:
    for node in ast.walk(ctx_tree):
        if isinstance(node, ast.Import):
            if any(
                a.name.startswith("multiprocessing") for a in node.names
            ):
                return True
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if mod.startswith("multiprocessing") or any(
                a.name == "shared_memory" for a in node.names
            ):
                return True
    return False


def _is_shm_view_source(node: ast.AST) -> bool:
    """Whether an assignment RHS produces a view over a shared-memory
    buffer: ``np.frombuffer(<anything>.buf, ...)``, or a call to a
    worker-side attach helper (a function named ``_attach``/``attach``),
    optionally sliced (``_attach(...)[:n]``)."""
    if isinstance(node, ast.Subscript):
        return _is_shm_view_source(node.value)
    if not isinstance(node, ast.Call):
        return False
    chain = attr_chain(node.func)
    if chain and chain[-1] == "frombuffer":
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Attribute) and sub.attr == "buf":
                    return True
        return False
    return bool(chain) and chain[-1] in ("_attach", "attach")


@register
class SharedStateHazard(ProjectRule):
    """R008: no shared mutable writes from concurrently-running code."""

    rule_id = "R008"
    name = "shared-state-hazard"
    summary = (
        "no module-level mutable or out-of-partition shared-memory "
        "writes from concurrent workers"
    )

    SCOPE_DIRS = ("sim", "net", "fabric")

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        entries = project.concurrent_entry_points()
        reachable = project.reachable(entries)
        # entry -> functions it reaches, for attribution in messages
        reached_by: dict[str, list[str]] = {}
        for entry in entries:
            for fn in project.reachable([entry]):
                reached_by.setdefault(fn, []).append(entry)
        for qualname in sorted(project.functions):
            info = project.functions[qualname]
            if not info.ctx.in_dirs(*self.SCOPE_DIRS):
                continue
            if qualname in reachable:
                via = sorted(reached_by.get(qualname, []))[:1]
                yield from self._check_module_mutables(
                    project, info, via[0] if via else qualname
                )
            if _uses_shared_memory(info.ctx.tree):
                yield from self._check_shm_writes(info)

    # ------------------------------------------------------------------
    # Part A: module-level mutable state
    # ------------------------------------------------------------------
    def _check_module_mutables(
        self, project: ProjectModel, info: FunctionInfo, entry: str
    ) -> Iterator[Finding]:
        mod = project.modules.get(info.module)
        if mod is None:
            return
        mutables = _module_level_mutables(mod.ctx.tree)
        if not mutables:
            return
        shadowed = set(info.params) | set(info.local_names)
        globals_declared: set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                globals_declared.update(node.names)
        live = {
            n
            for n in mutables
            if n not in shadowed or n in globals_declared
        }
        if not live:
            return

        def hit(name: str, node: ast.AST, how: str) -> Finding:
            return self.finding(
                info.ctx,
                node,
                f"module-level mutable `{name}` {how} in "
                f"`{info.qualname}`, which runs concurrently "
                f"(reachable from `{entry}`) — shared mutation is a "
                "race; pass state explicitly or keep it per-process "
                "with a justified suppression",
            )

        for node in ast.walk(info.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    base = target
                    while isinstance(
                        base, (ast.Subscript, ast.Attribute)
                    ):
                        base = base.value
                    if (
                        isinstance(base, ast.Name)
                        and base.id in live
                        and base is not target
                    ):
                        yield hit(base.id, node, "written")
                    elif (
                        isinstance(target, ast.Name)
                        and target.id in live
                        and target.id in globals_declared
                    ):
                        yield hit(target.id, node, "rebound via global")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    base = target
                    while isinstance(
                        base, (ast.Subscript, ast.Attribute)
                    ):
                        base = base.value
                    if isinstance(base, ast.Name) and base.id in live:
                        yield hit(base.id, node, "deleted from")
            elif isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if (
                    len(chain) == 2
                    and chain[0] in live
                    and chain[1] in _MUTATOR_METHODS
                ):
                    yield hit(
                        chain[0], node, f"mutated via .{chain[1]}()"
                    )

    # ------------------------------------------------------------------
    # Part B: shared-memory slab writes
    # ------------------------------------------------------------------
    def _check_shm_writes(self, info: FunctionInfo) -> Iterator[Finding]:
        if any(
            info.qualname.endswith(suffix)
            for suffix in _BLESSED_SHM_WRITERS
        ):
            return
        views: set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign):
                if _is_shm_view_source(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            views.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if node.value is not None and _is_shm_view_source(
                    node.value
                ):
                    if isinstance(node.target, ast.Name):
                        views.add(node.target.id)
        if not views:
            return
        for node in ast.walk(info.node):
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in views
                ):
                    yield self.finding(
                        info.ctx,
                        node,
                        f"shared-memory view `{target.value.id}` "
                        f"written in `{info.qualname}` outside the "
                        "blessed _ShmMirror.write path — out-of-"
                        "partition slab writes break the plan_shards "
                        "disjointness contract (kernels may mutate "
                        "only their own arc)",
                    )
