"""Suppression comments: silencing a rule at one line or one file.

Syntax (both forms may list several rule ids, comma-separated):

``# reprolint: disable=R001``
    Trailing comment on the offending line; silences those rules for
    findings reported *on that line only*.  Put a justification after
    the rule list — ``# reprolint: disable=R002 (wall-clock provenance)``.

``# reprolint: disable-file=R002``
    Anywhere in the file (conventionally in the module docstring area);
    silences those rules for the whole file.

Comments are extracted with :mod:`tokenize` (the AST drops them), so
suppressions inside strings do not count and multi-line statements
suppress at the line the comment sits on.
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["Suppressions", "parse_suppressions"]

# Rule ids are captured strictly (R###, comma-separated) so free-text
# justifications after the list — even uppercase ones like
# ``disable=R002 WALL CLOCK`` — cannot merge into the id tokens.
_RULE_LIST = r"R\d{3}(?:\s*,\s*R\d{3})*"
_LINE_RE = re.compile(rf"#\s*reprolint:\s*disable=({_RULE_LIST})")
_FILE_RE = re.compile(rf"#\s*reprolint:\s*disable-file=({_RULE_LIST})")


def _rule_ids(spec: str) -> frozenset[str]:
    return frozenset(
        part.strip() for part in spec.split(",") if part.strip()
    )


class Suppressions:
    """Per-file suppression table, queried by (rule, line)."""

    def __init__(
        self,
        file_rules: frozenset[str],
        line_rules: dict[int, frozenset[str]],
    ):
        self.file_rules = file_rules
        self.line_rules = line_rules

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_rules:
            return True
        return rule in self.line_rules.get(line, frozenset())


def parse_suppressions(source: str) -> Suppressions:
    """Extract every suppression comment from python source."""
    file_rules: set[str] = set()
    line_rules: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable files are reported by the engine as syntax errors;
        # suppression extraction just degrades to "none".
        comments = []
    for line, text in comments:
        file_match = _FILE_RE.search(text)
        if file_match:
            file_rules.update(_rule_ids(file_match.group(1)))
            continue
        line_match = _LINE_RE.search(text)
        if line_match:
            line_rules[line] = line_rules.get(
                line, frozenset()
            ) | _rule_ids(line_match.group(1))
    return Suppressions(frozenset(file_rules), line_rules)
