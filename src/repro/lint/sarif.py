"""SARIF 2.1.0 renderer for lint reports.

GitHub code scanning (and most SARIF viewers) ingest this directly, so
findings annotate PR diffs instead of living in a CI log.  Like the
``--json`` renderer, the output is a pure function of the report:
findings are already sorted, keys are sorted, there are no timestamps,
absolute paths, or tool-version strings that vary by machine — two runs
over the same tree produce byte-identical SARIF.

Only the minimal required subset of the (large) SARIF schema is
emitted: one run, one tool driver ("reprolint") with per-rule metadata
for the rules that actually ran, and one result per finding with a
single physical location.  ``error``/``warning`` severities map onto
SARIF levels of the same name.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.lint.base import all_rules

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.engine import LintReport

__all__ = ["render_sarif"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://json.schemastore.org/sarif-2.1.0.json"
)


def render_sarif(report: "LintReport") -> str:
    """Deterministic SARIF 2.1.0 document for ``report``."""
    by_id = {r.rule_id: r for r in all_rules()}
    rules_meta: list[dict[str, Any]] = []
    for rule_id in report.rules_run:
        rule = by_id.get(rule_id)
        if rule is None:
            continue
        rules_meta.append(
            {
                "id": rule_id,
                "name": rule.name,
                "shortDescription": {"text": rule.summary},
                "defaultConfiguration": {
                    "level": rule.severity.value
                },
            }
        )
    results = [
        {
            "ruleId": f.rule,
            "level": f.severity.value,
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col,
                        },
                    }
                }
            ],
        }
        for f in report.findings
    ]
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": rules_meta,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
