"""Whole-project model for interprocedural lint rules.

:func:`build_project_model` runs one deterministic pass over every
collected :class:`~repro.lint.base.FileContext` and produces a
:class:`ProjectModel` with three layers:

* a **module graph** — dotted module names derived from file paths plus
  the per-module import table (local binding → dotted target), so rules
  can resolve ``sleep(...)`` to ``time.sleep`` through a
  ``from time import sleep``;
* a **symbol table** — every function and method in the tree, keyed by
  qualified name (``repro.sim.shard._attach``,
  ``repro.net.node.LiveNode._heartbeat_loop``), each with its AST node,
  parameters, and async-ness;
* a **call-graph approximation** — per function, the dotted names its
  body calls, resolved through the import table, module-level
  definitions, and ``self.``/``cls.`` method dispatch.  Unresolvable
  calls (attribute chains on arbitrary objects) are simply absent: the
  graph is sound for name-based reachability questions, not complete.

On top of the call graph the model answers the two questions the
concurrency rules need: which functions are *dispatched onto a
concurrent executor* (handed to ``pool.map``/``submit``,
``loop.create_task``, ``run_in_executor``, ``Thread(target=...)``, an
``asyncio.start_server`` callback, ...) and therefore run concurrently
with the code that spawned them (:meth:`ProjectModel.concurrent_entry_
points` + :meth:`ProjectModel.reachable`), and which *parameters* of
which functions flow into such a dispatch (:meth:`ProjectModel.
concurrent_sink_params`, a fixpoint over one level of forwarding per
round) so a taint rule can follow a generator through helper calls.

Everything iterates in sorted order — the model is a pure function of
the file set, and rule output built from it stays byte-deterministic.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Iterable, Union

from repro.lint.base import FileContext

_BUILTIN_NAMES = frozenset(dir(builtins))

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "ProjectModel",
    "build_project_model",
    "attr_chain",
]

#: Method names that hand a callable (or a just-created coroutine
#: object) to a concurrent executor.  Matched as ``obj.<name>(...)`` —
#: the receiver is deliberately ignored, because pools, loops, and
#: executors arrive through many local names.
DISPATCH_METHODS = frozenset(
    {
        "map",
        "starmap",
        "imap",
        "imap_unordered",
        "submit",
        "apply",
        "apply_async",
        "map_async",
        "starmap_async",
        "run_in_executor",
        "create_task",
        "ensure_future",
        "start_server",
        "call_soon",
        "call_soon_threadsafe",
        "call_later",
    }
)

#: Constructors whose ``target=`` keyword is a concurrent entry point.
DISPATCH_CLASSES = frozenset({"Thread", "Process", "Timer"})

#: Positional index of the *callable* operand per dispatcher; payload
#: arguments (the ones forwarded into the callable) start right after.
#: ``run_in_executor(executor, fn, *args)`` puts the callable second.
_CALLABLE_INDEX = {"run_in_executor": 1, "call_later": 1}


def attr_chain(node: ast.AST) -> list[str]:
    """``np.random.default_rng`` → ``["np", "random", "default_rng"]``
    (empty when the chain does not bottom out at a plain name)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return []
    parts.append(node.id)
    return parts[::-1]


def module_name_for(path: str) -> str:
    """Dotted module name for a posix-relative file label.

    ``src/repro/sim/shard.py`` → ``repro.sim.shard``; ``__init__.py``
    maps to its package; ``..`` segments (out-of-root files) and a
    leading ``src`` are dropped so labels resolve the same from any
    lint root.
    """
    parts = [p for p in path.split("/") if p not in ("..", ".")]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method, with everything rules ask about it."""

    qualname: str
    module: str
    ctx: FileContext
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    is_async: bool
    class_name: Union[str, None]
    params: tuple[str, ...]
    #: bare names assigned anywhere in the body (shadowing detection)
    local_names: frozenset[str] = frozenset()
    #: resolved dotted callee names, source order, duplicates kept
    calls: tuple[str, ...] = ()


@dataclass
class ModuleInfo:
    """One collected file as a module: imports plus its definitions."""

    name: str
    ctx: FileContext
    #: local binding → dotted target (``m`` → ``x.y`` for
    #: ``import x.y as m``; ``f`` → ``pkg.f`` for ``from pkg import f``)
    imports: dict[str, str] = field(default_factory=dict)
    #: module-level function/class-method qualnames defined here
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: top-level class names defined here
    classes: tuple[str, ...] = ()


def _collect_imports(tree: ast.Module, module: str) -> dict[str, str]:
    imports: dict[str, str] = {}
    package = module.rsplit(".", 1)[0] if "." in module else ""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    imports[alias.asname] = alias.name
                else:
                    # ``import x.y`` binds ``x``; dotted use resolves
                    # through the chain (x → x, then .y.z appended)
                    top = alias.name.split(".")[0]
                    imports[top] = top
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                anchor = package
                for _ in range(node.level - 1):
                    anchor = anchor.rsplit(".", 1)[0] if "." in anchor else ""
                base = f"{anchor}.{base}" if base else anchor
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports


def _local_assigned_names(
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
) -> frozenset[str]:
    names: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            for t in ast.walk(sub.target):
                if isinstance(t, ast.Name):
                    names.add(t.id)
    return frozenset(names)


def _param_names(
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
) -> tuple[str, ...]:
    a = node.args
    params = [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]
    if a.vararg is not None:
        params.append(a.vararg.arg)
    if a.kwarg is not None:
        params.append(a.kwarg.arg)
    return tuple(params)


class ProjectModel:
    """The assembled whole-project view handed to every ProjectRule."""

    def __init__(self, ctxs: list[FileContext]):
        self.ctxs = ctxs
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: (path, lineno, col, name) → FunctionInfo, for node lookup
        self._by_site: dict[tuple[str, int, int, str], FunctionInfo] = {}
        self._entry_cache: Union[tuple[str, ...], None] = None
        self._sink_cache: Union[dict[str, frozenset[str]], None] = None
        for ctx in sorted(ctxs, key=lambda c: c.path):
            self._ingest(ctx)
        # second pass: resolve call edges (needs the full symbol table)
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            info.calls = tuple(
                name
                for node in ast.walk(info.node)
                if isinstance(node, ast.Call)
                for name in [self.resolve(info, node.func)]
                if name is not None
            )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _ingest(self, ctx: FileContext) -> None:
        mod_name = module_name_for(ctx.path)
        if mod_name in self.modules:
            return  # first (sorted) occurrence wins on collisions
        mod = ModuleInfo(
            name=mod_name,
            ctx=ctx,
            imports=_collect_imports(ctx.tree, mod_name),
        )
        classes: list[str] = []

        def add_function(
            node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
            class_name: Union[str, None],
        ) -> None:
            prefix = f"{mod_name}.{class_name}." if class_name else f"{mod_name}."
            info = FunctionInfo(
                qualname=f"{prefix}{node.name}",
                module=mod_name,
                ctx=ctx,
                node=node,
                is_async=isinstance(node, ast.AsyncFunctionDef),
                class_name=class_name,
                params=_param_names(node),
                local_names=_local_assigned_names(node),
            )
            if info.qualname not in mod.functions:
                mod.functions[info.qualname] = info
                self.functions[info.qualname] = info
                self._by_site[
                    (ctx.path, node.lineno, node.col_offset, node.name)
                ] = info

        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add_function(stmt, None)
            elif isinstance(stmt, ast.ClassDef):
                classes.append(stmt.name)
                for sub in stmt.body:
                    if isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        add_function(sub, stmt.name)
        mod.classes = tuple(classes)
        self.modules[mod_name] = mod

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def module_of(self, ctx: FileContext) -> Union[ModuleInfo, None]:
        return self.modules.get(module_name_for(ctx.path))

    def function_for(
        self,
        ctx: FileContext,
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
    ) -> Union[FunctionInfo, None]:
        return self._by_site.get(
            (ctx.path, node.lineno, node.col_offset, node.name)
        )

    def resolve(
        self, scope: FunctionInfo, func: ast.AST
    ) -> Union[str, None]:
        """Dotted name a call target resolves to, or ``None``.

        Resolution order: ``self.``/``cls.`` method dispatch in the
        enclosing class, module-level definitions, the import table
        (modules, imported functions, and imported classes — so
        ``RingState.build(...)`` resolves through
        ``from repro.core.state import RingState``).  Parameters and
        local variables shadow everything and resolve to ``None``.
        """
        chain = attr_chain(func)
        if not chain:
            return None
        mod = self.modules.get(scope.module)
        if mod is None:
            return None
        head = chain[0]
        if head in ("self", "cls") and scope.class_name is not None:
            if len(chain) == 2:
                qual = f"{scope.module}.{scope.class_name}.{chain[1]}"
                return qual if qual in self.functions else None
            return None
        if head in scope.params or head in scope.local_names:
            return None
        if len(chain) == 1:
            qual = f"{scope.module}.{head}"
            if qual in self.functions:
                return qual
        if head in mod.imports:
            dotted = mod.imports[head]
            if len(chain) > 1:
                dotted = f"{dotted}.{'.'.join(chain[1:])}"
            return dotted
        if head in mod.classes and len(chain) == 2:
            qual = f"{scope.module}.{head}.{chain[1]}"
            return qual if qual in self.functions else None
        if len(chain) == 1 and head in _BUILTIN_NAMES:
            return head
        return None

    def resolve_reference(
        self, scope: FunctionInfo, node: ast.AST
    ) -> Union[str, None]:
        """Like :meth:`resolve`, for a bare callable reference
        (``pool.submit(worker, ...)`` hands ``worker`` uncalled)."""
        return self.resolve(scope, node)

    # ------------------------------------------------------------------
    # reachability
    # ------------------------------------------------------------------
    def reachable(self, seeds: Iterable[str]) -> frozenset[str]:
        """Project functions reachable from ``seeds`` over call edges."""
        seen: set[str] = set()
        frontier = sorted(q for q in seeds if q in self.functions)
        while frontier:
            nxt: set[str] = set()
            for qual in frontier:
                if qual in seen:
                    continue
                seen.add(qual)
                for callee in self.functions[qual].calls:
                    if callee in self.functions and callee not in seen:
                        nxt.add(callee)
            frontier = sorted(nxt)
        return frozenset(seen)

    def _dispatch_sites(
        self, info: FunctionInfo
    ) -> list[tuple[ast.Call, list[ast.AST], list[ast.AST]]]:
        """Every dispatcher call in ``info``: (call, callable-operands,
        payload-args forwarded into the dispatched callable)."""
        sites: list[tuple[ast.Call, list[ast.AST], list[ast.AST]]] = []
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if not chain:
                continue
            name = chain[-1]
            if name in DISPATCH_METHODS and len(chain) > 1:
                idx = _CALLABLE_INDEX.get(name, 0)
                if len(node.args) <= idx:
                    continue
                sites.append(
                    (node, [node.args[idx]], list(node.args[idx + 1 :]))
                )
            elif name in DISPATCH_CLASSES:
                callables = [
                    kw.value for kw in node.keywords if kw.arg == "target"
                ]
                payload: list[ast.AST] = []
                for kw in node.keywords:
                    if kw.arg in ("args", "kwargs"):
                        payload.extend(ast.walk(kw.value))
                if callables:
                    sites.append((node, callables, payload))
        return sites

    def concurrent_entry_points(self) -> tuple[str, ...]:
        """Project functions handed to a concurrency dispatcher
        anywhere in the tree (worker bodies, loop tasks, callbacks)."""
        if self._entry_cache is not None:
            return self._entry_cache
        entries: set[str] = set()
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            for _call, callables, _payload in self._dispatch_sites(info):
                for ref in callables:
                    target = ref.func if isinstance(ref, ast.Call) else ref
                    resolved = self.resolve(info, target)
                    if resolved in self.functions:
                        entries.add(resolved)
        self._entry_cache = tuple(sorted(entries))
        return self._entry_cache

    def concurrent_sink_params(self) -> dict[str, frozenset[str]]:
        """Per function: parameters that flow into a concurrent
        dispatch — directly as payload, or forwarded into another
        function's sink parameter (fixpoint over call sites)."""
        if self._sink_cache is not None:
            return self._sink_cache
        sinks: dict[str, set[str]] = {q: set() for q in self.functions}
        # direct: a parameter appearing in dispatcher payload args
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            for _call, _callables, payload in self._dispatch_sites(info):
                for arg in payload:
                    for sub in ast.walk(arg) if not isinstance(
                        arg, ast.Name
                    ) else [arg]:
                        if (
                            isinstance(sub, ast.Name)
                            and sub.id in info.params
                        ):
                            sinks[qualname].add(sub.id)
        # propagate: calling g(p) where p lands on a sink param of g
        changed = True
        rounds = 0
        while changed and rounds <= len(self.functions):
            changed = False
            rounds += 1
            for qualname in sorted(self.functions):
                info = self.functions[qualname]
                for node in ast.walk(info.node):
                    if not isinstance(node, ast.Call):
                        continue
                    callee = self.resolve(info, node.func)
                    if callee not in self.functions:
                        continue
                    callee_info = self.functions[callee]
                    callee_sinks = sinks[callee]
                    if not callee_sinks:
                        continue
                    for pos, arg in enumerate(node.args):
                        if not isinstance(arg, ast.Name):
                            continue
                        if arg.id not in info.params:
                            continue
                        # positional → callee param (methods called via
                        # self.x() shift by one for the bound receiver)
                        shift = (
                            1
                            if callee_info.class_name is not None
                            and isinstance(node.func, ast.Attribute)
                            and attr_chain(node.func)[:1] in (["self"], ["cls"])
                            else 0
                        )
                        cp = callee_info.params
                        target_pos = pos + shift
                        if (
                            target_pos < len(cp)
                            and cp[target_pos] in callee_sinks
                            and arg.id not in sinks[qualname]
                        ):
                            sinks[qualname].add(arg.id)
                            changed = True
                    for kw in node.keywords:
                        if (
                            kw.arg in callee_sinks
                            and isinstance(kw.value, ast.Name)
                            and kw.value.id in info.params
                            and kw.value.id not in sinks[qualname]
                        ):
                            sinks[qualname].add(kw.value.id)
                            changed = True
        self._sink_cache = {
            q: frozenset(names) for q, names in sinks.items()
        }
        return self._sink_cache

    def dispatch_sites(
        self, info: FunctionInfo
    ) -> list[tuple[ast.Call, list[ast.AST], list[ast.AST]]]:
        """Public accessor for rules (same shape as _dispatch_sites)."""
        return self._dispatch_sites(info)


def build_project_model(ctxs: list[FileContext]) -> ProjectModel:
    """One deterministic whole-project pass over the collected files."""
    return ProjectModel(ctxs)
