"""Finding records — what a lint rule reports.

Findings order and serialize deterministically: the JSON renderer in
:mod:`repro.lint.engine` is byte-stable across runs of the same tree, so
CI can archive and diff lint artifacts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

__all__ = ["Finding", "Severity"]


class Severity(str, enum.Enum):
    """How a finding affects the exit code.

    ``ERROR`` findings fail the run; ``WARNING`` findings are printed but
    exit 0.  Every shipped rule defaults to ``ERROR`` — the invariants
    they check are correctness guarantees, not style preferences.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is stored relative to the lint root (posix separators) so
    output does not leak absolute paths and stays stable across
    machines.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str, str]:
        return (self.path, self.line, self.col, self.rule, self.message)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )
