"""reprolint — determinism-and-correctness static analysis for this repo.

The reproduction's headline guarantee (seeded runs are bit-identical and
fingerprint-pinned) rests on conventions: all randomness flows through
:mod:`repro.util.rng`, id math stays in uint64, error types come from
:mod:`repro.errors`, and result-schema changes bump the on-disk format
version.  ``reprolint`` machine-checks those conventions with custom AST
rules so a stray ``np.random.default_rng()`` or float-promoted id
subtraction fails CI instead of silently breaking reproducibility.

Since v2 the engine is *project-aware*: one deterministic pass
(:mod:`repro.lint.projectmodel`) builds the module/import graph, symbol
table, and a call-graph approximation, and every :class:`ProjectRule`
receives that model — which is what lets R007–R009 reason about code
that runs concurrently (worker entry points, asyncio tasks) and about
values flowing across function boundaries.  The static rules have a
runtime counterpart in :mod:`repro.sanitize` (``REPRO_SANITIZE=1``).

Run it as ``repro lint [paths]`` (or ``make lint``).  Rules:

=====  ======================  ===========================================
ID     Name                    Invariant
=====  ======================  ===========================================
R001   rng-discipline          randomness only via ``repro.util.rng``
R002   nondeterminism-hazard   no wall clock / uuid / set-order in logic
R003   uint64-arithmetic       id math stays unsigned (NEP 50 hazards)
R004   error-discipline        no broad excepts; core raises repro.errors
R005   config-drift            every config knob is read somewhere
R006   schema-versioning       result field changes bump RESULT_FORMAT
R007   async-discipline        net/ coroutines never block or drop tasks
R008   shared-state-hazard     no shared mutable writes from workers
R009   rng-stream-aliasing     one Generator, one concurrent consumer
=====  ======================  ===========================================

Suppressions: trailing ``# reprolint: disable=R001[,R002...]`` on the
offending line, or a whole-file ``# reprolint: disable-file=R002`` comment
(see :mod:`repro.lint.suppress`).

Reports render as human text, ``--json`` (``repro.lint_report.v1``,
byte-stable), or ``--format sarif`` (SARIF 2.1.0 for code scanning);
unchanged trees replay from the content-hash cache
(:mod:`repro.lint.cache`, disable with ``REPRO_LINT_CACHE=0``).
"""

from __future__ import annotations

from repro.lint.base import FileContext, ProjectRule, Rule, all_rules
from repro.lint.engine import LintReport, lint_paths, render_human, render_json
from repro.lint.findings import Finding, Severity
from repro.lint.projectmodel import ProjectModel, build_project_model
from repro.lint.sarif import render_sarif

# Importing the rule modules registers every rule with the registry.
from repro.lint import rules_rng as _rules_rng  # noqa: F401
from repro.lint import rules_numeric as _rules_numeric  # noqa: F401
from repro.lint import rules_errors as _rules_errors  # noqa: F401
from repro.lint import rules_project as _rules_project  # noqa: F401
from repro.lint import rules_async as _rules_async  # noqa: F401
from repro.lint import rules_shared as _rules_shared  # noqa: F401

__all__ = [
    "Finding",
    "Severity",
    "FileContext",
    "Rule",
    "ProjectRule",
    "ProjectModel",
    "build_project_model",
    "all_rules",
    "LintReport",
    "lint_paths",
    "render_human",
    "render_json",
    "render_sarif",
]
