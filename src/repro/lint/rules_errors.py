"""R004 error-discipline: narrow excepts, typed raises.

Two related invariants:

* **No broad exception handlers** anywhere: a bare ``except:`` (or
  ``except Exception`` / ``except BaseException``) swallows programming
  errors and — worse, in this codebase — ``KeyboardInterrupt``-adjacent
  pool failures that the trial runner must observe to retry correctly.
  A broad handler is allowed only when it visibly re-raises (cleanup
  handlers ending in bare ``raise``); anything else needs a per-line
  suppression with a justification.

* **Core modules raise only :mod:`repro.errors` types** (scope:
  ``sim/``, ``chord/``, ``core/``, ``hashspace/``): callers are promised
  they can catch ``ReproError`` for any library failure.  Protocol
  builtins stay allowed — ``KeyError``/``IndexError`` for mapping and
  sequence protocols, ``TypeError`` for programming errors,
  ``NotImplementedError`` and ``StopIteration`` for their usual roles.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.base import FileContext, Rule, register
from repro.lint.findings import Finding

__all__ = ["ErrorDiscipline"]

_BROAD = ("Exception", "BaseException")

#: Builtin exceptions core modules may raise (protocol conventions).
_ALLOWED_BUILTIN_RAISES = {
    "KeyError",
    "IndexError",
    "TypeError",
    "NotImplementedError",
    "StopIteration",
    "StopAsyncIteration",
    "AssertionError",
}

#: Builtin exception names that must not be raised from core modules.
_BUILTIN_EXCEPTIONS = {
    "Exception",
    "BaseException",
    "ValueError",
    "RuntimeError",
    "ArithmeticError",
    "ZeroDivisionError",
    "OverflowError",
    "OSError",
    "IOError",
    "LookupError",
    "AttributeError",
    "NameError",
    "SystemExit",
    "KeyboardInterrupt",
    "EOFError",
    "MemoryError",
    "RecursionError",
}


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body contains a bare ``raise``."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
    return False


def _exception_names(node: ast.AST | None) -> list[tuple[str, ast.AST]]:
    """Names in an ``except`` clause type (handles tuples)."""
    if node is None:
        return []
    if isinstance(node, ast.Tuple):
        out: list[tuple[str, ast.AST]] = []
        for elt in node.elts:
            out.extend(_exception_names(elt))
        return out
    if isinstance(node, ast.Name):
        return [(node.id, node)]
    if isinstance(node, ast.Attribute):
        return [(node.attr, node)]
    return []


@register
class ErrorDiscipline(Rule):
    """R004: no broad excepts; core modules raise repro.errors types."""

    rule_id = "R004"
    name = "error-discipline"
    summary = "no bare/broad except; core raises only repro.errors types"

    CORE_DIRS = ("sim", "chord", "core", "hashspace")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        core = ctx.in_dirs(*self.CORE_DIRS)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(ctx, node)
            elif isinstance(node, ast.Raise) and core:
                yield from self._check_raise(ctx, node)

    def _check_handler(
        self, ctx: FileContext, node: ast.ExceptHandler
    ) -> Iterator[Finding]:
        if node.type is None:
            yield self.finding(
                ctx,
                node,
                "bare `except:` swallows everything including "
                "KeyboardInterrupt — name the exceptions you expect",
            )
            return
        for name, _ in _exception_names(node.type):
            if name in _BROAD and not _reraises(node):
                yield self.finding(
                    ctx,
                    node,
                    f"broad `except {name}` without re-raise — catch "
                    "specific types (repro.errors.*) or re-raise; if "
                    "this is a worker/cleanup boundary, suppress with "
                    "a justification",
                )

    def _check_raise(
        self, ctx: FileContext, node: ast.Raise
    ) -> Iterator[Finding]:
        exc = node.exc
        if exc is None:  # bare re-raise
            return
        if isinstance(exc, ast.Call):
            exc = exc.func
        for name, _ in _exception_names(exc):
            if (
                name in _BUILTIN_EXCEPTIONS
                and name not in _ALLOWED_BUILTIN_RAISES
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"core module raises builtin `{name}` — raise a "
                    "repro.errors type instead so callers can catch "
                    "ReproError uniformly",
                )
