"""Rule machinery: file contexts, rule base classes, and the registry.

A rule is a small class with a stable ``rule_id`` (``R00x``), a
``name``, a default ``severity``, and one of two shapes:

* :class:`Rule` — per-file; ``check(ctx)`` yields findings for one
  parsed module.  Most rules are plain ``ast.NodeVisitor`` subclasses.
* :class:`ProjectRule` — cross-file; ``check_project(project)`` receives
  the whole-project :class:`~repro.lint.projectmodel.ProjectModel`
  (import graph, symbol table, call-graph approximation) built once per
  run — config-drift, schema-version, and the interprocedural
  concurrency rules all need more than one file at a time.

Rules register themselves via the :func:`register` decorator at import
time; :func:`all_rules` returns them in rule-id order so engine output
is deterministic.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import TYPE_CHECKING, Iterable, Iterator, Type, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.projectmodel import ProjectModel

from repro.errors import LintError
from repro.lint.findings import Finding, Severity

__all__ = [
    "FileContext",
    "Rule",
    "ProjectRule",
    "register",
    "all_rules",
    "resolve_rules",
]


@dataclass
class FileContext:
    """One parsed source file, as seen by every rule."""

    path: str  # relative to the lint root, posix separators
    source: str
    tree: ast.Module
    findings: list[Finding] = field(default_factory=list)

    @property
    def posix(self) -> PurePosixPath:
        return PurePosixPath(self.path)

    def in_dirs(self, *dirnames: str) -> bool:
        """Whether the file sits under any of the given directory names."""
        parts = self.posix.parts[:-1]
        return any(d in parts for d in dirnames)

    def is_file(self, *filenames: str) -> bool:
        """Whether the file's path ends with one of ``pkg/name.py`` tails."""
        return any(self.path.endswith(tail) for tail in filenames)


class Rule:
    """Per-file rule.  Subclasses set the class attributes and ``check``."""

    rule_id: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class ProjectRule(Rule):
    """Cross-file rule; receives the whole-project model at once.

    ``project.ctxs`` holds every collected :class:`FileContext` (the
    pre-v2 interface); the model's symbol table, import resolution, and
    call graph are available for interprocedural rules.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: "ProjectModel") -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry."""
    if not cls.rule_id:
        raise LintError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise LintError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, instantiated, in rule-id order."""
    return [_REGISTRY[rid]() for rid in sorted(_REGISTRY)]


def resolve_rules(selected: Union[Iterable[str], None]) -> list[Rule]:
    """Rules restricted to ``selected`` ids (all when ``None``)."""
    rules = all_rules()
    if selected is None:
        return rules
    wanted = {s.strip() for s in selected if s.strip()}
    unknown = wanted - {r.rule_id for r in rules}
    if unknown:
        raise LintError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(_REGISTRY))}"
        )
    return [r for r in rules if r.rule_id in wanted]
