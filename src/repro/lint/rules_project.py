"""Cross-file rules: R005 config-drift and R006 schema-versioning.

These rules see the whole collected tree at once.  When the tree does
not contain the anchor files (``config.py`` for R005, ``sim/results.py``
+ ``sim/persistence.py`` for R006) — e.g. when linting a subdirectory —
they pass silently rather than guessing.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from repro.lint.base import FileContext, ProjectRule, register
from repro.lint.findings import Finding
from repro.lint.projectmodel import ProjectModel

__all__ = ["ConfigDrift", "SchemaVersioning", "KNOWN_RESULT_SCHEMAS"]


def _find_ctx(
    ctxs: list[FileContext], tail: str
) -> Union[FileContext, None]:
    """Shallowest collected file whose path ends with ``tail``."""
    matches = [c for c in ctxs if c.path.endswith(tail)]
    if not matches:
        return None
    return min(matches, key=lambda c: (len(c.posix.parts), c.path))


def _dataclass_fields(tree: ast.Module, class_name: str) -> dict[str, int]:
    """``{field_name: lineno}`` of annotated fields in a dataclass body."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return {
                stmt.target.id: stmt.lineno
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and not isinstance(stmt.annotation, ast.Constant)
            }
    return {}


@register
class ConfigDrift(ProjectRule):
    """R005: every config knob must be read somewhere outside config.py.

    Collects the annotated fields of ``SimulationConfig``,
    ``FailureModel`` and ``AdversaryModel`` from ``config.py``, then
    scans every other
    collected file for an attribute read of that name (``cfg.n_nodes``,
    ``self.churn_rate``, ...).  A field nobody reads is a dead knob:
    either it silently stopped doing anything (a refactor dropped the
    consumer) or it never did — both are bugs for a paper reproduction
    that claims its config table matches the paper's variable table.

    Generic access in ``config.py`` itself (``getattr(self, f.name)``
    in ``as_dict``) deliberately does not count as a read.
    """

    rule_id = "R005"
    name = "config-drift"
    summary = (
        "every SimulationConfig/FailureModel/AdversaryModel field is "
        "read somewhere"
    )

    CONFIG_CLASSES = ("SimulationConfig", "FailureModel", "AdversaryModel")

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        ctxs = project.ctxs
        config_ctx = _find_ctx(ctxs, "config.py")
        if config_ctx is None:
            return
        fields: dict[str, int] = {}
        for cls in self.CONFIG_CLASSES:
            fields.update(_dataclass_fields(config_ctx.tree, cls))
        if not fields:
            return
        unread = dict(fields)
        for ctx in ctxs:
            if ctx is config_ctx or not unread:
                continue
            for node in ast.walk(ctx.tree):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)
                    and node.attr in unread
                ):
                    del unread[node.attr]
        for name in sorted(unread):
            yield Finding(
                rule=self.rule_id,
                severity=self.severity,
                path=config_ctx.path,
                line=unread[name],
                col=1,
                message=(
                    f"config field `{name}` is never read outside "
                    "config.py — dead knob: wire it up or remove it"
                ),
            )


#: Pinned schema manifest: on-disk format version -> the exact field set
#: of ``SimulationResult`` that version serializes.  Changing the result
#: dataclass without bumping ``RESULT_FORMAT`` (and recording the new
#: field set here) invalidates every cached trial silently — R006 makes
#: that a lint error instead.
KNOWN_RESULT_SCHEMAS: dict[str, frozenset[str]] = {
    "repro.simulation_result.v2": frozenset(
        {
            "config",
            "runtime_ticks",
            "ideal_ticks",
            "completed",
            "total_consumed",
            "snapshots",
            "timeseries",
            "counters",
            "final_loads",
            "termination_reason",
            "total_injected",
            "n_survivors",
        }
    ),
    "repro.simulation_result.v3": frozenset(
        {
            "config",
            "runtime_ticks",
            "ideal_ticks",
            "completed",
            "total_consumed",
            "snapshots",
            "timeseries",
            "counters",
            "final_loads",
            "termination_reason",
            "total_injected",
            "n_survivors",
            "adversary",
        }
    ),
}


def _result_format_value(tree: ast.Module) -> Union[str, None]:
    """The string assigned to ``RESULT_FORMAT`` in persistence.py."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "RESULT_FORMAT"
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)
                ):
                    return node.value.value
    return None


def _serialized_keys(tree: ast.Module) -> set[str]:
    """String keys written by ``result_to_dict`` in persistence.py.

    Covers both the dict-literal payload and later
    ``payload["key"] = ...`` subscript assignments.
    """
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.FunctionDef)
            and node.name == "result_to_dict"
        ):
            keys: set[str] = set()
            for sub in ast.walk(node):
                if isinstance(sub, ast.Dict):
                    for key in sub.keys:
                        if isinstance(key, ast.Constant) and isinstance(
                            key.value, str
                        ):
                            keys.add(key.value)
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.slice, ast.Constant)
                            and isinstance(target.slice.value, str)
                        ):
                            keys.add(target.slice.value)
            return keys
    return set()


@register
class SchemaVersioning(ProjectRule):
    """R006: SimulationResult field changes must bump RESULT_FORMAT.

    Cross-checks ``sim/results.py`` against ``sim/persistence.py``:

    1. every ``SimulationResult`` field must appear among the keys
       ``result_to_dict`` serializes (a field that never reaches disk is
       lost on a cache round-trip);
    2. the current field set must exactly match the manifest pinned in
       :data:`KNOWN_RESULT_SCHEMAS` for the current ``RESULT_FORMAT``
       string — adding/removing/renaming a field without bumping the
       version (and recording the new set) is flagged at the dataclass.
    """

    rule_id = "R006"
    name = "schema-versioning"
    summary = "SimulationResult field-set changes must bump RESULT_FORMAT"

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        ctxs = project.ctxs
        results_ctx = _find_ctx(ctxs, "sim/results.py")
        persist_ctx = _find_ctx(ctxs, "sim/persistence.py")
        if results_ctx is None or persist_ctx is None:
            return
        fields = _dataclass_fields(results_ctx.tree, "SimulationResult")
        if not fields:
            return
        serialized = _serialized_keys(persist_ctx.tree)
        version = _result_format_value(persist_ctx.tree)

        for name in sorted(fields):
            if name not in serialized:
                yield Finding(
                    rule=self.rule_id,
                    severity=self.severity,
                    path=results_ctx.path,
                    line=fields[name],
                    col=1,
                    message=(
                        f"SimulationResult field `{name}` is not "
                        "serialized by result_to_dict — it will be lost "
                        "on a cache round-trip; serialize it and bump "
                        "RESULT_FORMAT"
                    ),
                )

        if version is None:
            yield Finding(
                rule=self.rule_id,
                severity=self.severity,
                path=persist_ctx.path,
                line=1,
                col=1,
                message=(
                    "RESULT_FORMAT string constant not found in "
                    "persistence.py — the schema version anchor is gone"
                ),
            )
            return
        expected = KNOWN_RESULT_SCHEMAS.get(version)
        actual = frozenset(fields)
        if expected is None:
            yield Finding(
                rule=self.rule_id,
                severity=self.severity,
                path=persist_ctx.path,
                line=1,
                col=1,
                message=(
                    f"RESULT_FORMAT {version!r} is not recorded in "
                    "repro.lint.rules_project.KNOWN_RESULT_SCHEMAS — "
                    "pin its field set there when bumping the version"
                ),
            )
        elif actual != expected:
            added = ", ".join(sorted(actual - expected)) or "-"
            removed = ", ".join(sorted(expected - actual)) or "-"
            yield Finding(
                rule=self.rule_id,
                severity=self.severity,
                path=results_ctx.path,
                line=min(fields.values()),
                col=1,
                message=(
                    f"SimulationResult field set changed (added: {added}; "
                    f"removed: {removed}) but RESULT_FORMAT is still "
                    f"{version!r} — bump the version in sim/persistence.py "
                    "and record the new field set in KNOWN_RESULT_SCHEMAS"
                ),
            )
