"""R007 async-discipline: the live ``net/`` layer must not stall its loop.

The asyncio event loop in :mod:`repro.net` multiplexes the TCP server,
the maintenance/heartbeat/decision loops, and every stress worker on one
thread.  A single synchronous call inside a coroutine freezes all of
them at once — heartbeats miss, peers declare the node dead, and the
seeded stress measurements silently include the stall.  The discipline
the layer already follows (blocking protocol work hops through
``loop.run_in_executor``; tasks are retained in ``self._tasks``) is what
R007 pins:

* **No blocking calls inside ``async def``** — ``time.sleep``, sync
  socket construction/IO, ``subprocess``/``os.system``, bare ``open``.
  The check is interprocedural through the project model: a coroutine
  calling a *project* sync function that (transitively) performs one of
  those blocking operations is flagged too, with the offending chain in
  the message.  Handing the same function to ``run_in_executor`` is
  clean — that is the sanctioned escape hatch, and a bare function
  reference is not a call.
* **No un-awaited coroutine calls** — a statement-position call of a
  project ``async def`` (or ``asyncio.sleep``/``gather``/``wait``/
  ``wait_for``) builds a coroutine object and throws it away; the body
  never runs and Python only warns at GC time, nondeterministically.
* **No dropped task handles** — ``create_task``/``ensure_future`` in
  statement position discards the only strong reference; the event loop
  keeps weak ones, so the task can be garbage-collected mid-flight
  (the exact bug the ``self._tasks`` list in ``LiveNode`` prevents).
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from repro.lint.base import ProjectRule, register
from repro.lint.findings import Finding
from repro.lint.projectmodel import (
    FunctionInfo,
    ProjectModel,
    attr_chain,
)

__all__ = ["AsyncDiscipline"]

#: Exact dotted names that block the calling thread.
_BLOCKING_EXACT = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.wait",
        "os.waitpid",
        "open",
        "input",
    }
)

#: Dotted-name prefixes whose whole namespace is synchronous I/O.
_BLOCKING_PREFIXES = (
    "socket.",
    "subprocess.",
    "urllib.request.",
    "requests.",
)

#: Statement-position calls to these asyncio helpers build a coroutine
#: (or future) that nothing ever awaits.
_AWAITABLE_FACTORIES = frozenset(
    {
        "asyncio.sleep",
        "asyncio.gather",
        "asyncio.wait",
        "asyncio.wait_for",
        "asyncio.open_connection",
        "asyncio.start_server",
    }
)

_TASK_SPAWNERS = frozenset({"create_task", "ensure_future"})


def _is_blocking_name(dotted: str) -> bool:
    if dotted in _BLOCKING_EXACT:
        return True
    return any(dotted.startswith(p) for p in _BLOCKING_PREFIXES)


def _shallow_calls(
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
) -> Iterator[ast.Call]:
    """Calls in a function body, not descending into nested defs or
    lambdas (their bodies run on their own rules, not in this frame)."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        sub = stack.pop()
        if isinstance(
            sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        if isinstance(sub, ast.Call):
            yield sub
        stack.extend(ast.iter_child_nodes(sub))


@register
class AsyncDiscipline(ProjectRule):
    """R007: coroutines in ``net/`` never block, drop, or leak work."""

    rule_id = "R007"
    name = "async-discipline"
    summary = (
        "no blocking calls, un-awaited coroutines, or dropped task "
        "handles in net/ async code"
    )

    SCOPE_DIRS = ("net",)

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        blocking = self._blocking_project_functions(project)
        async_names = {
            q for q, f in project.functions.items() if f.is_async
        }
        for qualname in sorted(project.functions):
            info = project.functions[qualname]
            if not info.ctx.in_dirs(*self.SCOPE_DIRS):
                continue
            if info.is_async:
                yield from self._check_blocking(project, info, blocking)
            yield from self._check_statement_calls(
                project, info, async_names
            )

    # ------------------------------------------------------------------
    def _blocking_project_functions(
        self, project: ProjectModel
    ) -> dict[str, str]:
        """Sync project functions that (transitively) block, mapped to
        the dotted blocking primitive that makes them so."""
        blocking: dict[str, str] = {}
        for qualname in sorted(project.functions):
            info = project.functions[qualname]
            if info.is_async:
                continue
            for callee in info.calls:
                if _is_blocking_name(callee):
                    blocking[qualname] = callee
                    break
        # contagion: calling a blocking sync function is itself blocking
        changed = True
        while changed:
            changed = False
            for qualname in sorted(project.functions):
                if qualname in blocking:
                    continue
                info = project.functions[qualname]
                if info.is_async:
                    continue
                for callee in info.calls:
                    if callee in blocking:
                        blocking[qualname] = blocking[callee]
                        changed = True
                        break
        return blocking

    def _check_blocking(
        self,
        project: ProjectModel,
        info: FunctionInfo,
        blocking: dict[str, str],
    ) -> Iterator[Finding]:
        for call in _shallow_calls(info.node):
            resolved = project.resolve(info, call.func)
            if resolved is None:
                continue
            if _is_blocking_name(resolved):
                yield self.finding(
                    info.ctx,
                    call,
                    f"blocking call `{resolved}` inside "
                    f"`async def {info.node.name}` stalls the event "
                    "loop — await an async equivalent or hop through "
                    "loop.run_in_executor",
                )
            elif resolved in blocking:
                via = blocking[resolved]
                yield self.finding(
                    info.ctx,
                    call,
                    f"`{resolved}` blocks (calls `{via}`) and is "
                    f"invoked synchronously inside "
                    f"`async def {info.node.name}` — dispatch it via "
                    "loop.run_in_executor",
                )

    def _check_statement_calls(
        self,
        project: ProjectModel,
        info: FunctionInfo,
        async_names: frozenset,
    ) -> Iterator[Finding]:
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Expr) or not isinstance(
                node.value, ast.Call
            ):
                continue
            call = node.value
            chain = attr_chain(call.func)
            resolved = project.resolve(info, call.func)
            if chain and chain[-1] in _TASK_SPAWNERS:
                yield self.finding(
                    info.ctx,
                    call,
                    f"`{'.'.join(chain)}(...)` result dropped — the "
                    "loop holds only a weak reference, so the task can "
                    "be garbage-collected mid-flight; retain the handle "
                    "(e.g. append to a task list)",
                )
            elif resolved is not None and (
                resolved in async_names
                or resolved in _AWAITABLE_FACTORIES
            ):
                yield self.finding(
                    info.ctx,
                    call,
                    f"coroutine `{resolved}(...)` is never awaited — "
                    "the call only builds the coroutine object; "
                    "`await` it or schedule it with create_task",
                )
