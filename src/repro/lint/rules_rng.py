"""R001 rng-discipline and R002 nondeterminism-hazard.

Both rules defend the same guarantee from different directions: every
stochastic draw in a seeded run must come from a ``numpy.random.Generator``
that was derived (via :mod:`repro.util.rng`) from the run's
``SeedSequence``, and nothing else in the simulation may observe
run-to-run-varying state (wall clock, OS entropy, hash-order of sets).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.base import FileContext, ProjectRule, Rule, register
from repro.lint.findings import Finding
from repro.lint.projectmodel import FunctionInfo, ProjectModel

__all__ = ["RngDiscipline", "NondeterminismHazard", "RngStreamAliasing"]

#: The one module allowed to construct generators from raw seeds.
RNG_MODULE_TAIL = "util/rng.py"

#: ``np.random.<name>`` calls that mint or mutate RNG state, or sample
#: from the *global* generator.  ``SeedSequence`` is deliberately absent:
#: deriving child seeds is bookkeeping, not sampling, and the trial
#: runner does it far from util/rng.py.
_BANNED_NP_RANDOM = {
    "default_rng",
    "seed",
    "get_state",
    "set_state",
    "Generator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
    # legacy global-state samplers
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "ranf",
    "sample",
    "choice",
    "shuffle",
    "permutation",
    "bytes",
    "uniform",
    "normal",
    "standard_normal",
    "beta",
    "binomial",
    "poisson",
    "exponential",
    "gamma",
    "geometric",
    "zipf",
}


def _attr_chain(node: ast.AST) -> list[str]:
    """``np.random.default_rng`` -> ["np", "random", "default_rng"]."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        return []
    return parts[::-1]


@register
class RngDiscipline(Rule):
    """R001: randomness flows only through ``repro.util.rng``.

    Flags, outside ``util/rng.py``:

    * ``import random`` / ``from random import ...`` (the stdlib global
      Mersenne Twister — unseedable per-run, shared process state);
    * ``np.random.default_rng`` / ``np.random.seed`` /
      ``np.random.Generator(...)`` and friends (ad-hoc generator
      construction bypasses the SeedSequence spawn tree);
    * legacy ``np.random.<sampler>()`` calls that draw from numpy's
      hidden global generator.

    RNG must arrive as a ``numpy.random.Generator`` *parameter*, built
    by :func:`repro.util.rng.make_rng` or spawned by the trial runner.
    Annotations (``rng: np.random.Generator``) are not calls and are
    never flagged.
    """

    rule_id = "R001"
    name = "rng-discipline"
    summary = "randomness must flow through util/rng.py Generators"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.is_file(RNG_MODULE_TAIL):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            "stdlib `import random` — draw from the "
                            "np.random.Generator parameter instead "
                            "(see util/rng.py)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        ctx,
                        node,
                        "`from random import ...` — stdlib global RNG "
                        "is not seed-reproducible here; use the "
                        "Generator parameter",
                    )
            elif isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if (
                    len(chain) >= 3
                    and chain[-2] == "random"
                    and chain[0] in ("np", "numpy")
                    and chain[-1] in _BANNED_NP_RANDOM
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"`{'.'.join(chain)}(...)` outside util/rng.py — "
                        "construct generators with "
                        "repro.util.rng.make_rng and pass them down",
                    )


#: Wall-clock / entropy calls banned inside simulation logic.
#: ``time.perf_counter`` is included: even duration measurement is
#: nondeterministic state, so it needs an explicit allowlist entry or a
#: justified suppression.  ``time.sleep`` is not here — it observes
#: nothing.
_BANNED_TIME_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("os", "urandom"),
    ("os", "getrandom"),
    ("uuid", "uuid1"),
    ("uuid", "uuid3"),
    ("uuid", "uuid4"),
    ("uuid", "uuid5"),
    ("secrets", "token_bytes"),
    ("secrets", "token_hex"),
    ("secrets", "randbelow"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
}

#: Files allowed to read the wall clock: user-facing reporting and the
#: live measurement layer, where elapsed-seconds output is the point and
#: never feeds simulation state.  Only the *clock* check is waived —
#: id()-keys, set-order, and parallelism checks still apply.
WALLCLOCK_ALLOWLIST = (
    "repro/cli.py",
    # The stress generator exists to measure wall-clock latency and
    # convergence time on a live ring; every decision it makes (keys,
    # targets, op mix) still comes from seeded generators.
    "repro/net/stress.py",
    # Subprocess startup/shutdown deadlines: timeouts on real child
    # processes are inherently wall-clock; nothing feeds results.
    "repro/net/cluster.py",
    # The trial-fabric broker: lease deadlines, hang-timeout windows,
    # ETA estimates and status-file rate limiting are scheduling
    # metadata.  Results are assembled by unit index from seeds fixed at
    # queue-build time, so no clock read can reach a fingerprint (the
    # fabric smoke gate holds broker output bit-identical to serial).
    "repro/fabric/broker.py",
)

#: Top-level modules whose import signals process/thread parallelism or
#: real network I/O — scheduling, completion, and message-arrival order
#: are run-varying state, so these are banned in simulation logic except
#: where a fixed-order merge makes the parallelism invisible to
#: fingerprinted outputs (or the module is the live layer itself).
_PARALLEL_MODULES = {
    "multiprocessing",
    "threading",
    "concurrent",
    "asyncio",
    "socket",
    "selectors",
}

#: Files allowed to import parallelism machinery.  Each entry exists
#: because its merge discipline provably removes scheduling order from
#: every fingerprinted output:
PARALLELISM_ALLOWLIST = (
    # The sharded consumption engine: workers mutate *disjoint* slot
    # ranges of a shared-memory slab and per-shard totals merge in
    # ascending shard index (pool.map order), never completion order;
    # every RNG draw stays on the sequential global stream.  See the
    # determinism contract in repro/sim/shard.py's module docstring.
    "repro/sim/shard.py",
    # The trial runner's semantic surface: threading.Lock around the
    # module-level RunStats collector, which the fabric settles into
    # from its dispatch *and* listener threads.  Dispatch itself lives
    # in repro/fabric/.
    "repro/sim/trials.py",
    # The trial-fabric broker: fans out *whole trials*, each sealed with
    # its own spawned SeedSequence fixed at queue-build time; results
    # are keyed by (point, trial) unit index, so neither local pool
    # completion order nor remote settle arrival order can reorder
    # anything observable.  Uses threading (listener + one lock),
    # concurrent.futures/multiprocessing (local pool) and socket (the
    # worker attach path).
    "repro/fabric/broker.py",
    # The live layer (repro/net/) runs on real sockets by design; it is
    # strictly additive — nothing in the simulation path imports it, so
    # its scheduling nondeterminism cannot reach a fingerprinted output
    # (the obs-smoke bit-identity gate enforces the separation):
    # asyncio + socket: the wire protocol itself.
    "repro/net/transport.py",
    # asyncio server/tasks + a thread pool for blocking protocol work;
    # all *decisions* (jitter, Sybil placement) stay on seeded RNGs.
    "repro/net/node.py",
    # asyncio load-generator workers; op/key/target choices are seeded.
    "repro/net/stress.py",
    # threading: one stdout-reader thread per spawned serve subprocess.
    "repro/net/cluster.py",
)

#: Builtins through which consuming a set is order-safe.
_ORDER_SAFE_CONSUMERS = {"sorted", "len", "sum", "min", "max", "any", "all"}
#: Builtins that materialize iteration order (hash order escapes).
_ORDER_EXPOSING_CONSUMERS = {"list", "tuple", "enumerate", "iter", "next"}


def _is_setlike(node: ast.AST) -> bool:
    """Expressions that statically evaluate to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_setlike(node.left) or _is_setlike(node.right)
    return False


@register
class NondeterminismHazard(Rule):
    """R002: no run-varying state inside ordering-sensitive logic.

    Scope: ``sim/``, ``chord/``, ``core/``, ``experiments/`` (plus
    ``hashspace/``, ``obs/``, and ``net/``) — the layers whose outputs
    are fingerprint-pinned, plus the live layer where only the
    explicitly allowlisted wall-clock/parallelism uses are sanctioned.
    Flags:

    * wall-clock / entropy calls (``time.time``, ``time.monotonic``,
      ``os.urandom``, ``uuid.*``, ``datetime.now``, ...);
    * ``id()``-keyed containers and ``key=id`` sort keys (CPython
      addresses vary run to run);
    * iterating a set (``for x in set(...)``, ``list({...})``,
      comprehensions over set expressions): hash order is not part of
      the reproducibility contract — wrap in ``sorted(...)`` instead;
    * ``multiprocessing`` / ``threading`` / ``concurrent.*`` imports:
      scheduling and completion order vary run to run, so parallelism
      is sanctioned only in ``PARALLELISM_ALLOWLIST`` modules whose
      fixed-order merges keep it out of fingerprinted outputs.

    ``repro/cli.py`` is allowlisted for wall-clock reporting; anything
    else needs a per-line suppression with a justification.
    """

    rule_id = "R002"
    name = "nondeterminism-hazard"
    summary = "no wall clock, uuid, id()-keys, or set-order in sim logic"

    SCOPE_DIRS = (
        "sim",
        "chord",
        "core",
        "experiments",
        "hashspace",
        "obs",
        "net",
        "fabric",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_dirs(*self.SCOPE_DIRS):
            return
        # Allowlists are per-check, not per-file: a wall-clock waiver
        # must not also waive set-order or parallelism findings.
        clock_ok = any(
            ctx.path.endswith(tail) for tail in WALLCLOCK_ALLOWLIST
        )
        parallel_ok = any(
            ctx.path.endswith(tail) for tail in PARALLELISM_ALLOWLIST
        )
        for node in ast.walk(ctx.tree):
            if not clock_ok:
                yield from self._check_clock_call(ctx, node)
            yield from self._check_id_keys(ctx, node)
            yield from self._check_set_order(ctx, node)
            if not parallel_ok:
                yield from self._check_parallel_import(ctx, node)

    def _check_clock_call(
        self, ctx: FileContext, node: ast.AST
    ) -> Iterator[Finding]:
        if not isinstance(node, ast.Call):
            return
        chain = _attr_chain(node.func)
        if len(chain) < 2:
            return
        # match on the last two components so `datetime.datetime.now`
        # and `from os import urandom; urandom()` both resolve.
        pair = (chain[-2], chain[-1])
        if pair in _BANNED_TIME_CALLS:
            yield self.finding(
                ctx,
                node,
                f"`{'.'.join(chain)}()` in simulation code — wall clock "
                "and OS entropy vary run to run; derive everything from "
                "the seeded Generator (allowlist: cli.py reporting)",
            )

    def _check_parallel_import(
        self, ctx: FileContext, node: ast.AST
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            names = [node.module or ""]
        else:
            return
        for name in names:
            if name.split(".")[0] in _PARALLEL_MODULES:
                yield self.finding(
                    ctx,
                    node,
                    f"`{name}` import in simulation code — process/"
                    "thread scheduling order varies run to run; "
                    "parallelism is sanctioned only in the allowlisted "
                    "shard/trial runners (PARALLELISM_ALLOWLIST)",
                )

    def _check_id_keys(
        self, ctx: FileContext, node: ast.AST
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            for kw in node.keywords:
                if (
                    kw.arg == "key"
                    and isinstance(kw.value, ast.Name)
                    and kw.value.id == "id"
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "`key=id` — CPython object addresses vary run "
                        "to run; sort by a stable attribute",
                    )
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if (
                    isinstance(key, ast.Call)
                    and isinstance(key.func, ast.Name)
                    and key.func.id == "id"
                ):
                    yield self.finding(
                        ctx,
                        key,
                        "`id(...)`-keyed container — object addresses "
                        "are not reproducible; key by a stable identity",
                    )

    def _check_set_order(
        self, ctx: FileContext, node: ast.AST
    ) -> Iterator[Finding]:
        message = (
            "iterating a set exposes hash order to ordering-sensitive "
            "logic — wrap in sorted(...) for a reproducible order"
        )
        if isinstance(node, (ast.For, ast.AsyncFor)) and _is_setlike(
            node.iter
        ):
            yield self.finding(ctx, node.iter, message)
        elif isinstance(
            node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)
        ):
            for gen in node.generators:
                if _is_setlike(gen.iter):
                    yield self.finding(ctx, gen.iter, message)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_EXPOSING_CONSUMERS
            and node.args
            and _is_setlike(node.args[0])
        ):
            yield self.finding(
                ctx,
                node,
                f"`{node.func.id}(<set>)` materializes hash order — "
                "use sorted(...) instead",
            )


# ----------------------------------------------------------------------
# R009: interprocedural RNG-stream aliasing
# ----------------------------------------------------------------------

#: Call names that mint a ``numpy.random.Generator``.
_GENERATOR_FACTORIES = ("make_rng", "default_rng", "spawn_rng")


def _tainted_rng_names(
    info: FunctionInfo,
) -> dict[str, int]:
    """``{name: lineno}`` of local names holding a Generator: bare
    assignments from a generator factory, plus parameters annotated
    ``Generator``."""
    tainted: dict[str, int] = {}
    args = info.node.args
    for param in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        ann = param.annotation
        if ann is None:
            continue
        for sub in ast.walk(ann):
            if (
                isinstance(sub, ast.Name) and sub.id == "Generator"
            ) or (
                isinstance(sub, ast.Attribute) and sub.attr == "Generator"
            ):
                tainted[param.arg] = info.node.lineno
                break
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        chain = _attr_chain(node.value.func)
        if not chain or chain[-1] not in _GENERATOR_FACTORIES:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                tainted[target.id] = node.lineno
    return tainted


def _loops_containing(
    info: FunctionInfo,
) -> list[tuple[int, int]]:
    """(lineno, end_lineno) span of every loop in the function body."""
    spans = []
    for node in ast.walk(info.node):
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            spans.append(
                (node.lineno, getattr(node, "end_lineno", node.lineno))
            )
    return spans


@register
class RngStreamAliasing(ProjectRule):
    """R009: one Generator, one concurrent consumer.

    A ``numpy.random.Generator`` is a mutable stream cursor: two
    concurrent consumers drawing from the same instance interleave in
    scheduling order, so a seeded run stops being a function of its
    seed.  The per-file R001/R002 checks cannot see a generator *flow*
    across function boundaries — R009 uses the project model's
    dispatcher and sink-parameter analysis to follow it:

    * a tainted name (assigned from ``make_rng``/``default_rng``/
      ``spawn_rng``, or a ``Generator``-annotated parameter) appearing
      in the payload of **more than one** concurrency dispatch
      (``pool.submit``/``map``, ``create_task``, ``Thread(target=...,
      args=...)``, ...) or forwarded into more than one function whose
      matching parameter reaches such a dispatch;
    * the same tainted name dispatched **inside a loop** whose body did
      not create it — every iteration ships the *same* stream to
      another concurrent consumer;
    * **seed-stream reuse**: two generator-factory calls in one
      function with byte-identical non-``None`` seed expressions mint
      two cursors over one stream — the same numbers come out twice
      (spawn children from a ``SeedSequence`` instead, as
      ``run_trials``/``shard_seed_streams`` do).
    """

    rule_id = "R009"
    name = "rng-stream-aliasing"
    summary = (
        "a Generator must not flow into more than one concurrent "
        "consumer or reuse a seed stream"
    )

    SCOPE_DIRS = NondeterminismHazard.SCOPE_DIRS

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        sink_params = project.concurrent_sink_params()
        for qualname in sorted(project.functions):
            info = project.functions[qualname]
            if not info.ctx.in_dirs(*self.SCOPE_DIRS):
                continue
            yield from self._check_aliasing(project, info, sink_params)
            yield from self._check_seed_reuse(info)

    # ------------------------------------------------------------------
    def _consumption_events(
        self,
        project: ProjectModel,
        info: FunctionInfo,
        sink_params: dict,
        tainted: dict[str, int],
    ) -> list[tuple[str, ast.AST]]:
        """Each ``(name, node)`` where a tainted generator is handed to
        a concurrent consumer, in source order."""
        events: list[tuple[str, ast.AST]] = []
        dispatch_calls: set[int] = set()
        for call, callables, payload in project.dispatch_sites(info):
            dispatch_calls.add(id(call))
            for arg in payload:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Name) and sub.id in tainted:
                        events.append((sub.id, sub))
            # a lambda handed to a dispatcher closes over the stream
            for ref in callables:
                if isinstance(ref, ast.Lambda):
                    for sub in ast.walk(ref.body):
                        if (
                            isinstance(sub, ast.Name)
                            and sub.id in tainted
                        ):
                            events.append((sub.id, sub))
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call) or id(node) in dispatch_calls:
                continue
            callee = project.resolve(info, node.func)
            if callee not in project.functions:
                continue
            callee_info = project.functions[callee]
            sinks = sink_params.get(callee, frozenset())
            if not sinks:
                continue
            shift = (
                1
                if callee_info.class_name is not None
                and isinstance(node.func, ast.Attribute)
                else 0
            )
            for pos, arg in enumerate(node.args):
                if not (
                    isinstance(arg, ast.Name) and arg.id in tainted
                ):
                    continue
                cp = callee_info.params
                if pos + shift < len(cp) and cp[pos + shift] in sinks:
                    events.append((arg.id, arg))
            for kw in node.keywords:
                if (
                    kw.arg in sinks
                    and isinstance(kw.value, ast.Name)
                    and kw.value.id in tainted
                ):
                    events.append((kw.value.id, kw.value))
        events.sort(
            key=lambda e: (
                getattr(e[1], "lineno", 0),
                getattr(e[1], "col_offset", 0),
            )
        )
        return events

    def _check_aliasing(
        self,
        project: ProjectModel,
        info: FunctionInfo,
        sink_params: dict,
    ) -> Iterator[Finding]:
        tainted = _tainted_rng_names(info)
        if not tainted:
            return
        events = self._consumption_events(
            project, info, sink_params, tainted
        )
        loops = _loops_containing(info)
        by_name: dict[str, list[ast.AST]] = {}
        for name, node in events:
            by_name.setdefault(name, []).append(node)
        for name in sorted(by_name):
            nodes = by_name[name]
            if len(nodes) > 1:
                for node in nodes[1:]:
                    yield self.finding(
                        info.ctx,
                        node,
                        f"generator `{name}` flows into multiple "
                        "concurrent consumers — each consumer needs "
                        "its own spawned stream (SeedSequence.spawn / "
                        "spawn_seeds), or the interleaving order "
                        "becomes part of the result",
                    )
                continue
            node = nodes[0]
            created = tainted[name]
            line = getattr(node, "lineno", 0)
            for lo, hi in loops:
                if lo <= line <= hi and not (lo <= created <= hi):
                    yield self.finding(
                        info.ctx,
                        node,
                        f"generator `{name}` is dispatched to a "
                        "concurrent consumer inside a loop but created "
                        "outside it — every iteration shares one "
                        "stream; mint a per-iteration generator from a "
                        "spawned seed",
                    )
                    break

    def _check_seed_reuse(self, info: FunctionInfo) -> Iterator[Finding]:
        seen: dict[str, ast.Call] = {}
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if not chain or chain[-1] not in _GENERATOR_FACTORIES:
                continue
            if not node.args or node.keywords:
                continue
            seed_expr = node.args[0]
            if (
                isinstance(seed_expr, ast.Constant)
                and seed_expr.value is None
            ):
                continue
            key = ast.dump(seed_expr)
            if key in seen:
                yield self.finding(
                    info.ctx,
                    node,
                    f"`{'.'.join(chain)}({ast.unparse(seed_expr)})` "
                    "reuses a seed already consumed in "
                    f"`{info.node.name}` — two generators over one "
                    "seed stream emit identical draws; spawn child "
                    "seeds instead (spawn_seeds / SeedSequence.spawn)",
                )
            else:
                seen[key] = node
        return
